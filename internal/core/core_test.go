package core

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mvm"
	"repro/internal/names"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func bootDefault(t testing.TB) *System {
	t.Helper()
	s, err := Boot(DefaultConfig())
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return s
}

func TestBootSequence(t *testing.T) {
	s := bootDefault(t)
	log := s.BootLog()
	if len(log) < 6 {
		t.Fatalf("boot log too short: %v", log)
	}
	wantOrder := []string{"microkernel:", "i/o support", "microkernel services", "block driver", "shared services", "personality: os2"}
	idx := 0
	for _, line := range log {
		if idx < len(wantOrder) && strings.HasPrefix(line, wantOrder[idx]) {
			idx++
		}
	}
	if idx != len(wantOrder) {
		t.Fatalf("boot order wrong at step %d: %v", idx, log)
	}
	if !s.Loader.Sealed() {
		t.Fatal("loader must seal after the first personality initializes")
	}
}

func TestBootBadConfig(t *testing.T) {
	if _, err := Boot(Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
	cfg := DefaultConfig()
	cfg.Personalities = []string{"beos"}
	if _, err := Boot(cfg); err == nil {
		t.Fatal("unknown personality should fail")
	}
}

func TestFigure1Inventory(t *testing.T) {
	s := bootDefault(t)
	inv := s.Inventory()
	layers := map[string]int{}
	for _, c := range inv {
		layers[c.Layer]++
	}
	if layers["microkernel"] != 7 {
		t.Fatalf("microkernel boxes = %d, want 7 (IPC/RPC, VM, tasks, hosts, I/O, clocks, sync)", layers["microkernel"])
	}
	if layers["services"] < 4 {
		t.Fatalf("microkernel services = %d", layers["services"])
	}
	if layers["shared"] < 4 || layers["personality"] != 4 {
		t.Fatalf("layers = %v", layers)
	}
	fig := s.RenderFigure1()
	for _, want := range []string{"IBM MICROKERNEL", "MICROKERNEL SERVICES", "SHARED SERVICES", "PERSONALITY", "IPC/RPC", "File Server", "OS/2 Server", "MVM Server"} {
		if !strings.Contains(fig, want) {
			t.Fatalf("figure missing %q:\n%s", want, fig)
		}
	}
}

func TestNameServiceBindings(t *testing.T) {
	s := bootDefault(t)
	if _, err := s.Names.Lookup("/servers/files"); err != nil {
		t.Fatalf("file server not bound: %v", err)
	}
	got, err := s.Names.Search("/servers", "class", "personality")
	if err != nil || len(got) != 4 {
		t.Fatalf("personalities in name tree: %v %v", got, err)
	}
}

// TestMultiServerEndToEnd runs all three personalities concurrently over
// the shared file server — the headline multi-server claim.
func TestMultiServerEndToEnd(t *testing.T) {
	s := bootDefault(t)

	// OS/2 process writes a FAT file.
	op, err := s.OS2.CreateProcess("writer")
	if err != nil {
		t.Fatal(err)
	}
	h, e := op.DosOpen("/SHARED.TXT", true, true)
	if e != 0 {
		t.Fatalf("DosOpen: %v", e)
	}
	if _, e := op.DosWrite(h, []byte("from os/2")); e != 0 {
		t.Fatalf("DosWrite: %v", e)
	}
	op.DosClose(h)

	// POSIX process reads it back through the same server.
	pp, err := s.POSIX.Spawn("reader")
	if err != nil {
		t.Fatal(err)
	}
	// UNIX profile against a FAT volume: case-folded name still works,
	// and the compromise is recorded.
	fd, pe := pp.Open("/shared.txt", 0)
	if pe != 0 {
		t.Fatalf("posix open: %v", pe)
	}
	buf := make([]byte, 16)
	n, pe := pp.Read(fd, buf)
	if pe != 0 || string(buf[:n]) != "from os/2" {
		t.Fatalf("posix read: %q %v", buf[:n], pe)
	}
	pp.Close(fd)

	// A DOS guest appends to it via INT 21h.
	v, err := s.MVM.NewVM("append.com", mvm.Translate)
	if err != nil {
		t.Fatal(err)
	}
	a := mvm.NewAsm()
	a.MovImm(mvm.AX, 0x3D00) // open
	a.MovImm(mvm.DX, 0x100)
	a.Int(0x21)
	a.MovReg(mvm.BX, mvm.AX)
	a.MovImm(mvm.AX, 0x4000) // write
	a.MovImm(mvm.CX, 5)
	a.MovImm(mvm.DX, 0x200)
	a.Int(0x21)
	a.MovImm(mvm.AX, 0x3E00) // close
	a.Int(0x21)
	a.Hlt()
	prog, _ := a.Assemble()
	v.Load(prog)
	copy(v.Mem[0x100:], []byte("SHARED.TXT\x00"))
	copy(v.Mem[0x200:], []byte("+dos!"))
	if err := v.Run(10000); err != nil {
		t.Fatalf("guest: %v", err)
	}

	// The OS/2 side sees the combined file.
	a2, e := op.DosQueryPathInfo("/SHARED.TXT")
	if e != 0 || a2.Size != 14 {
		t.Fatalf("final stat: %+v %v", a2, e)
	}
	// Semantic-union accounting captured the UNIX-on-FAT compromise.
	found := false
	for _, c := range s.Files.Disp.Compromises() {
		if c.FS == "fat" && c.Profile == vfs.ProfileUNIX {
			found = true
		}
	}
	_ = found // compromise only recorded on name-creating ops; presence not guaranteed here
}

// TestSemanticUnionAcrossVolumes is experiment E8: the same long-name
// operation succeeds on HPFS and JFS but fails on FAT.
func TestSemanticUnionAcrossVolumes(t *testing.T) {
	s := bootDefault(t)
	p, err := s.OS2.CreateProcess("longname")
	if err != nil {
		t.Fatal(err)
	}
	long := "A Long Descriptive Filename.document"
	if _, e := p.DosOpen("/"+long, true, true); e == 0 {
		t.Fatal("FAT must reject the long name")
	}
	if h, e := p.DosOpen("/hpfs/"+long, true, true); e != 0 {
		t.Fatalf("HPFS should accept: %v", e)
	} else {
		p.DosClose(h)
	}
	if h, e := p.DosOpen("/jfs/"+long, true, true); e != 0 {
		t.Fatalf("JFS should accept: %v", e)
	} else {
		p.DosClose(h)
	}
	// The compromise ledger names FAT.
	sawFAT := false
	for _, c := range s.Files.Disp.Compromises() {
		if c.FS == "fat" && c.Detail == "name exceeds format limit" {
			sawFAT = true
		}
	}
	if !sawFAT {
		t.Fatalf("compromise not recorded: %+v", s.Files.Disp.Compromises())
	}
}

func TestDriverModelConfigs(t *testing.T) {
	for _, d := range []DriverModel{DriverUser, DriverKernel, DriverOODDM} {
		cfg := DefaultConfig()
		cfg.Driver = d
		cfg.Personalities = []string{"os2"}
		s, err := Boot(cfg)
		if err != nil {
			t.Fatalf("boot with %s: %v", d, err)
		}
		p, _ := s.OS2.CreateProcess("io")
		h, e := p.DosOpen("/X.DAT", true, true)
		if e != 0 {
			t.Fatalf("%s open: %v", d, e)
		}
		if _, e := p.DosWrite(h, []byte("abc")); e != 0 {
			t.Fatalf("%s write: %v", d, e)
		}
		p.DosClose(h)
	}
}

// TestTable1Shape is experiment E1 as a correctness gate: file-intensive
// rows come out well above parity (paper ~3x), graphics rows at or below
// parity (paper 0.71-0.91), and the overall geometric character matches.
func TestTable1Shape(t *testing.T) {
	ratios := map[workload.Row]float64{}
	for _, row := range workload.Rows {
		// Fresh systems per row so cache state and disk layout match.
		w := bootDefault(t)
		n, err := BootNative(cpu.Pentium133(), 16, 16384)
		if err != nil {
			t.Fatal(err)
		}
		wres, err := workload.Run(row, w.WorkloadEnv())
		if err != nil {
			t.Fatalf("wpos %s: %v", row, err)
		}
		nres, err := workload.Run(row, n.WorkloadEnv())
		if err != nil {
			t.Fatalf("native %s: %v", row, err)
		}
		r := float64(wres.Cycles) / float64(nres.Cycles)
		ratios[row] = r
		t.Logf("%-18s wpos=%-10d native=%-10d ratio=%.2f", row, wres.Cycles, nres.Cycles, r)
	}
	if ratios[workload.FileIntensive1] < 2.0 || ratios[workload.FileIntensive1] > 4.5 {
		t.Errorf("File Intensive 1 ratio %.2f outside [2.0, 4.5] (paper 2.96)", ratios[workload.FileIntensive1])
	}
	if ratios[workload.FileIntensive2] < 2.0 || ratios[workload.FileIntensive2] > 4.5 {
		t.Errorf("File Intensive 2 ratio %.2f outside [2.0, 4.5] (paper 2.97)", ratios[workload.FileIntensive2])
	}
	for _, g := range []workload.Row{workload.GraphicsLow, workload.GraphicsMedium, workload.GraphicsHigh} {
		if ratios[g] > 1.1 {
			t.Errorf("%s ratio %.2f should be at or below parity (paper 0.71-0.91)", g, ratios[g])
		}
		if ratios[g] < 0.4 {
			t.Errorf("%s ratio %.2f implausibly low", g, ratios[g])
		}
	}
	if ratios[workload.GraphicsHigh] >= ratios[workload.GraphicsLow] {
		t.Errorf("graphics advantage should grow with intensity: low=%.2f high=%.2f",
			ratios[workload.GraphicsLow], ratios[workload.GraphicsHigh])
	}
	for _, pm := range []workload.Row{workload.PMTaskingMedium, workload.PMTaskingHigh} {
		if ratios[pm] < 0.6 || ratios[pm] > 1.5 {
			t.Errorf("%s ratio %.2f outside [0.6, 1.5] (paper 0.82/1.02)", pm, ratios[pm])
		}
	}
}

func TestSimpleNamesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SimpleNames = true
	cfg.Personalities = []string{"os2"}
	s, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.SimpleNS == nil {
		t.Fatal("simple name service missing")
	}
	if err := s.SimpleNS.Bind("files", names.Binding{}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleRootedNameTree: every mounted file system appears in the name
// service with its format and mount point, searchable by attribute.
func TestSingleRootedNameTree(t *testing.T) {
	s := bootDefault(t)
	fss, err := s.Names.Search("/filesystems", "class", "filesystem")
	if err != nil || len(fss) != 3 {
		t.Fatalf("filesystems in name tree: %v %v", fss, err)
	}
	b, err := s.Names.Lookup("/filesystems/jfs")
	if err != nil {
		t.Fatalf("jfs entry: %v", err)
	}
	attrs := map[string]string{}
	for _, a := range b.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["format"] != "jfs" || attrs["mount"] != "/jfs" {
		t.Fatalf("jfs attrs: %v", attrs)
	}
	// The mounts the dispatcher knows match the name tree.
	if got := len(s.Files.Disp.Mounts()); got != 3 {
		t.Fatalf("dispatcher mounts = %d", got)
	}
}
