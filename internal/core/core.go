// Package core assembles Workplace OS: it boots the IBM Microkernel and
// the Microkernel Services (name service, loader, default pager), brings
// up device drivers through the hardware resource manager, starts the
// shared services (file server over the block driver, networking), and
// finally the operating-system personalities (OS/2, UNIX, MVM) — the
// structure of the paper's Figure 1.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bcache"
	"repro/internal/cpu"
	"repro/internal/drivers"
	"repro/internal/fat"
	"repro/internal/hpfs"
	"repro/internal/iosys"
	"repro/internal/jfs"
	"repro/internal/kflight"
	"repro/internal/klat"
	"repro/internal/kstat"
	"repro/internal/ksync"
	"repro/internal/ktime"
	"repro/internal/ktrace"
	"repro/internal/loader"
	"repro/internal/mach"
	"repro/internal/monitor"
	"repro/internal/mvm"
	"repro/internal/names"
	"repro/internal/netsvc"
	"repro/internal/os2"
	"repro/internal/pager"
	"repro/internal/posix"
	"repro/internal/registry"
	"repro/internal/talos"
	"repro/internal/vfs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// DriverModel selects the block-driver architecture for the boot disk.
type DriverModel string

// Driver models.
const (
	DriverUser   DriverModel = "user-level"
	DriverKernel DriverModel = "in-kernel"
	DriverOODDM  DriverModel = "ooddm"
)

// IOConfig groups the I/O-path knobs: the boot disk, the driver model
// sitting under the file server, and the file server's buffer cache.
type IOConfig struct {
	DiskSectors uint64
	Driver      DriverModel
	// CacheSectors sizes the file server's unified buffer cache in
	// 512-byte sectors.  0 (the default) disables the cache entirely:
	// every file operation crosses to the block driver exactly as in the
	// seed reproduction.
	CacheSectors int
	// CacheReadAhead is the sequential read-ahead window in sectors
	// (0 = bcache default, negative disables read-ahead).
	CacheReadAhead int
	// CacheDirtyMax bounds the write-behind list (0 = bcache default).
	CacheDirtyMax int
	// ZeroCopy moves bulk payloads of at least a page on the file and
	// driver protocols by shared-memory region descriptor — per-page map
	// cost, zero per-byte copy cycles — instead of copied out-of-line
	// memory.  Off (the default) keeps the seed's copy semantics, cycle
	// for cycle.
	ZeroCopy bool
	// BatchRPC enables vectored RPC batching: batched stat and
	// readdir+stat on the file protocol, and one-crossing vectored
	// write-behind flushes from the buffer cache to the user-level
	// driver.  Off keeps the classic one-crossing-per-op paths.
	BatchRPC bool
}

// ServerConfig groups the multi-server structure knobs.
type ServerConfig struct {
	// ServerPool is the number of server threads each multi-threaded
	// server (file server, OS/2 personality, registry, user-level block
	// driver) runs per receive right.  0 or 1 keeps the classic
	// single-threaded loops of the seed reproduction.
	ServerPool int
	// SimpleNames selects the Release 2 embedded name service.
	SimpleNames bool
}

// Config parameterizes a boot.  The I/O and server knobs live in
// embedded sub-configs; field promotion keeps flat access
// (cfg.DiskSectors, cfg.ServerPool, ...) working for existing callers.
type Config struct {
	CPU      cpu.Config
	MemoryMB int
	// CPUs is the number of processing engines.  0 or 1 boots the classic
	// single-engine system — cycle-for-cycle identical to the seed
	// reproduction; N > 1 boots an N-engine Complex with real processor
	// sets and the SMP dispatcher.
	CPUs int
	IOConfig
	ServerConfig
	// Personalities to start: "os2", "posix", "mvm" (default all).
	Personalities []string
	// ObjectMode selects the networking framework style.
	ObjectMode netsvc.Mode
}

// IO returns the I/O sub-config (compatibility accessor).
func (c *Config) IO() *IOConfig { return &c.IOConfig }

// Servers returns the server sub-config (compatibility accessor).
func (c *Config) Servers() *ServerConfig { return &c.ServerConfig }

// DefaultConfig returns the configuration of the paper's PowerPC machine.
func DefaultConfig() Config {
	return Config{
		CPU:           cpu.Pentium133(),
		MemoryMB:      64,
		IOConfig:      IOConfig{DiskSectors: 16384, Driver: DriverUser},
		Personalities: []string{"os2", "posix", "mvm", "talos"},
		ObjectMode:    netsvc.FineGrained,
	}
}

// System is a booted Workplace OS.
type System struct {
	Config Config

	// Microkernel.
	Kernel *mach.Kernel
	VM     *vm.System
	Clock  *ktime.Clock
	Sync   *ksync.Factory

	// Microkernel Services.
	Names    *names.Service
	SimpleNS *names.SimpleService
	Loader   *loader.Loader
	Pager    *pager.DefaultPager

	// I/O support and devices.
	HRM     *iosys.HRM
	Intr    *iosys.InterruptController
	DMA     *iosys.DMAController
	IOSpace *iosys.IOSpace
	Disk    *drivers.Disk
	Console *drivers.Console
	FB      *drivers.Framebuffer
	NICs    [2]*drivers.NIC

	// Shared services.
	Block    drivers.BlockDriver
	Files    *vfs.Server
	Net      *netsvc.Stack
	Registry *registry.Server
	Monitor  *monitor.Server

	// Stats is the system-wide kstat metric set, attached to the
	// kernel's engine for the system's whole life (boot included).
	Stats *kstat.Set

	// Personalities.
	OS2   *os2.Server
	POSIX *posix.Server
	MVM   *mvm.Server
	TalOS *talos.Server

	mu      sync.Mutex
	bootLog []string
	FATDisk vfs.BlockDev
}

// ErrBadConfig reports an unusable configuration.
var ErrBadConfig = errors.New("core: bad configuration")

// Boot brings the system up in the canonical order.
func Boot(cfg Config) (*System, error) {
	if cfg.MemoryMB <= 0 || cfg.DiskSectors < 128 {
		return nil, ErrBadConfig
	}
	s := &System{Config: cfg}
	log := func(f string, a ...any) { s.bootLog = append(s.bootLog, fmt.Sprintf(f, a...)) }

	// 1. Microkernel (privileged state).
	ncpu := cfg.CPUs
	if ncpu < 1 {
		ncpu = 1
	}
	s.Kernel = mach.NewSMP(cfg.CPU, ncpu)
	layout := s.Kernel.Layout()
	// Metrics fabric: attached before anything else runs, so boot itself
	// is counted.  Observation hooks throughout the system find this set
	// via kstat.For and never charge the cost model.
	s.Stats = kstat.Attach(s.Kernel.CPU)
	// Flight recorder: always-on bounded rings of the last K events per
	// engine, the raw material of postmortem dumps.  Like kstat it is
	// observation-only — a boot with it detached is cycle-identical.
	kflight.Attach(s.Kernel.CPU)
	// Tail-latency ledger: every Call mints a request hop, the RPC path
	// stamps it, the slowest requests keep their full hop-by-hop
	// timelines for MsgTailDump / cmd/klat.  Observation-only like the
	// planes above — a detached boot models bit-identical cycles.
	klat.Attach(s.Kernel.CPU)
	// On a multi-engine boot, seed the per-engine kstat families so every
	// exposition lists all engines from the first frame.
	s.Kernel.PublishCPUStats()
	if ncpu > 1 {
		log("smp: %d engines, processor sets, affinity dispatch with idle stealing", ncpu)
	}
	s.VM = vm.NewSystem(uint64(cfg.MemoryMB) << 20)
	// VM fault observation for ktrace and kstat: the hooks fire only when
	// an observer is attached to this kernel's engine and never charge
	// the model.
	eng := s.Kernel.CPU
	s.VM.SetFaultObserver(func(asid, addr uint64, write bool) {
		if st := kstat.For(eng); st != nil {
			st.Counter("vm.faults").Inc()
		}
		if t := ktrace.For(eng); t != nil {
			kind := "fault:read"
			if write {
				kind = "fault:write"
			}
			t.Emit(ktrace.EvVMFault, "vm", kind, ktrace.SpanContext{}, addr|asid<<48)
		}
		if fr := kflight.For(eng); fr != nil {
			kind := "fault:read"
			if write {
				kind = "fault:write"
			}
			fr.Emit(ktrace.EvVMFault, "vm", kind, addr|asid<<48)
		}
	})
	s.Clock = ktime.NewClock(s.Kernel.CPU, layout, 133)
	s.Sync = ksync.NewFactory(s.Kernel.CPU, layout)
	log("microkernel: IPC/RPC, VM, tasks/threads, hosts, I/O, clocks, synchronizers")

	// 2. I/O support and the hardware complement.
	s.HRM = iosys.NewHRM(s.Kernel.CPU, layout)
	s.Intr = iosys.NewInterruptController(s.Kernel.CPU, layout, 32)
	s.DMA = iosys.NewDMAController(s.Kernel.CPU, layout, 4)
	s.IOSpace = iosys.NewIOSpace(s.Kernel.CPU)
	var err error
	s.Disk, err = drivers.NewDisk(s.Kernel.CPU, s.DMA, s.Intr, 14, cfg.DiskSectors)
	if err != nil {
		return nil, err
	}
	s.Console = drivers.NewConsole(s.Kernel.CPU)
	s.FB = drivers.NewFramebuffer(s.Kernel.CPU, 0xA0000, 640, 480)
	s.NICs[0] = drivers.NewNIC(s.Kernel.CPU, s.Intr, 10, "en0")
	s.NICs[1] = drivers.NewNIC(s.Kernel.CPU, s.Intr, 11, "en1")
	drivers.Connect(s.NICs[0], s.NICs[1])
	s.HRM.Register(iosys.Resource{Name: "disk0", Kind: iosys.ResIOPorts, Base: 0x1F0, Size: 8})
	s.HRM.Register(iosys.Resource{Name: "fb0", Kind: iosys.ResMemory, Base: 0xA0000, Size: 640 * 480})
	log("i/o support: HRM, interrupts, DMA; devices: disk, console, framebuffer, 2x nic")

	// 3. Microkernel Services: bootstrap task, naming, loader, pager.
	s.Names = names.NewService(s.Kernel.CPU, layout)
	if cfg.SimpleNames {
		s.SimpleNS = names.NewSimpleService(s.Kernel.CPU, layout)
	}
	s.Loader = loader.New(s.Kernel.CPU, layout, s.VM)
	s.Pager = pager.New(s.Kernel.CPU, layout, pager.NewRAMStore(4096))
	s.VM.SetDefaultPager(s.Pager)
	log("microkernel services: name service (%s), loader, default pager",
		map[bool]string{true: "X.500 + simplified", false: "X.500"}[cfg.SimpleNames])

	// 4. Device driver for the boot disk, per the configured model.
	switch cfg.Driver {
	case DriverKernel:
		s.Block, err = drivers.NewKernelBlockDriver(s.Kernel, layout, s.Disk, s.Intr)
	case DriverOODDM:
		s.Block, err = drivers.NewOODDMBlockDriver(s.Kernel, layout, s.Disk, s.Intr)
	default:
		s.Block, err = drivers.NewUserBlockDriver(s.Kernel, layout, s.Disk, s.HRM, s.Intr, cfg.ServerPool)
	}
	if err != nil {
		return nil, err
	}
	if cfg.ZeroCopy || cfg.BatchRPC {
		if ub, ok := s.Block.(*drivers.UserBlockDriver); ok {
			ub.SetTransfer(cfg.ZeroCopy, cfg.BatchRPC)
		}
		log("transfer: zero-copy=%v vectored-batch=%v", cfg.ZeroCopy, cfg.BatchRPC)
	}
	log("block driver: %s", s.Block.Model())

	// 5. Shared services: the file server over the driver, networking.
	s.Files, err = vfs.NewServer(s.Kernel, cfg.ServerPool)
	if err != nil {
		return nil, err
	}
	if cfg.ZeroCopy || cfg.BatchRPC {
		s.Files.SetTransfer(vfs.Transfer{ZeroCopy: cfg.ZeroCopy, Batch: cfg.BatchRPC})
	}
	// Unified buffer cache: when configured, every device-backed volume
	// mounted below gets a write-behind sector cache interposed inside
	// the file-server task, so hot file operations stop crossing into the
	// block driver.  CacheSectors == 0 installs nothing — the seed's
	// direct-to-driver path, cycle for cycle.
	if cfg.CacheSectors > 0 {
		hrm := s.HRM
		s.Files.SetDevCache(func(dev vfs.BlockDev) vfs.CachedDev {
			return bcache.New(s.Kernel.CPU, layout, dev, bcache.Config{
				CapacitySectors: cfg.CacheSectors,
				DirtyMax:        cfg.CacheDirtyMax,
				ReadAhead:       cfg.CacheReadAhead,
				HRM:             hrm,
			})
		})
	}
	// FAT boot volume over the real block driver (every file op crosses
	// into the driver unless cached); HPFS and JFS volumes on secondary
	// RAM disks.  All three attach through the redesigned MountVolume
	// call, which threads the device through the cache.
	diskTh, err := s.Files.Task().NewBoundThread("diskio")
	if err != nil {
		return nil, err
	}
	// The boot device: batch-enabled boots bind the vectored adapter
	// (which advertises vfs.BatchDev to the buffer cache); everything
	// else gets the classic adapter so features-off boots never take a
	// vectored path.
	var bootDev vfs.BlockDev
	if ub, ok := s.Block.(drivers.BatchDriver); ok && cfg.BatchRPC {
		bootDev = drivers.NewVectorSectorDev(ub, diskTh, cfg.DiskSectors)
	} else {
		bootDev = drivers.NewSectorDev(s.Block, diskTh, cfg.DiskSectors)
	}
	if err := fat.Format(bootDev); err != nil {
		return nil, err
	}
	s.FATDisk = bootDev
	if err := s.Files.MountVolume("/", fat.New(), bootDev); err != nil {
		return nil, err
	}
	hdev := vfs.NewRAMDisk(8192)
	if err := hpfs.Format(hdev); err != nil {
		return nil, err
	}
	if err := s.Files.MountVolume("/hpfs", hpfs.New(), hdev); err != nil {
		return nil, err
	}
	jdev := vfs.NewRAMDisk(8192)
	if err := jfs.Format(jdev); err != nil {
		return nil, err
	}
	if err := s.Files.MountVolume("/jfs", jfs.New(), jdev); err != nil {
		return nil, err
	}
	s.Net, err = netsvc.NewStack(s.Kernel.CPU, layout, s.NICs[0], "wpos", cfg.ObjectMode)
	if err != nil {
		return nil, err
	}
	s.Registry, err = registry.NewServer(s.Kernel, s.Files, "/hpfs/OS2SYS.INI", cfg.ServerPool)
	if err != nil {
		return nil, err
	}
	log("shared services: file server (fat on %s driver, hpfs, jfs), networking (%v objects), registry",
		cfg.Driver, cfg.ObjectMode)

	// Bind the servers into the single rooted name tree.
	bind := func(path string, task *mach.Task, attrs ...names.Attr) {
		s.Names.Bind(path, names.Binding{Task: task, Attrs: attrs})
	}
	bind("/servers/files", s.Files.Task(), names.Attr{Key: "class", Value: "shared-service"})
	bind("/servers/registry", s.Registry.Task(), names.Attr{Key: "class", Value: "shared-service"})
	// "The file server ... was designed to work with the name service so
	// that all file systems could appear as a part of WPOS's single
	// rooted tree of names."
	mountInfo := []struct{ mount, fsname string }{
		{"/", "fat"}, {"/hpfs", "hpfs"}, {"/jfs", "jfs"},
	}
	for _, mi := range mountInfo {
		label := strings.TrimPrefix(mi.mount, "/")
		if label == "" {
			label = "root"
		}
		bind("/filesystems/"+label, s.Files.Task(),
			names.Attr{Key: "class", Value: "filesystem"},
			names.Attr{Key: "format", Value: mi.fsname},
			names.Attr{Key: "mount", Value: mi.mount})
	}

	// 6. Personalities.
	for _, p := range cfg.Personalities {
		switch p {
		case "os2":
			s.OS2, err = os2.NewServer(s.Kernel, s.VM, s.Files, s.Clock, s.Sync, cfg.ServerPool)
			if err != nil {
				return nil, err
			}
			bind("/servers/personality/os2", s.OS2.Task(), names.Attr{Key: "class", Value: "personality"})
		case "posix":
			s.POSIX, err = posix.NewServer(s.Kernel, s.VM, s.Files)
			if err != nil {
				return nil, err
			}
			s.Names.Bind("/servers/personality/posix", names.Binding{Attrs: []names.Attr{{Key: "class", Value: "personality"}}})
		case "mvm":
			s.MVM = mvm.NewServer(s.Kernel, s.Files, s.Console)
			s.Names.Bind("/servers/personality/mvm", names.Binding{Attrs: []names.Attr{{Key: "class", Value: "personality"}}})
		case "talos":
			s.TalOS, err = talos.NewServer(s.Kernel, s.VM, s.Files)
			if err != nil {
				return nil, err
			}
			bind("/servers/personality/talos", s.TalOS.Task(), names.Attr{Key: "class", Value: "personality"})
		default:
			return nil, fmt.Errorf("%w: unknown personality %q", ErrBadConfig, p)
		}
		log("personality: %s", p)
	}
	// The Microkernel Services loader only loads programs prior to the
	// initialization of the first personality.
	if len(cfg.Personalities) > 0 {
		s.Loader.Seal()
	}

	// 7. Monitor server: the metrics fabric exported as a shared service
	// over the system's own RPC, last so it can observe everything above.
	s.Monitor, err = monitor.NewServer(s.Kernel, s.Stats, cfg.ServerPool)
	if err != nil {
		return nil, err
	}
	// Published with its service port so any task can connect through the
	// name service alone (monitor.Connect on the looked-up binding).
	s.Names.Bind("/servers/monitor", names.Binding{
		Task: s.Monitor.Task(), Port: s.Monitor.Port(),
		Attrs: []names.Attr{{Key: "class", Value: "shared-service"}},
	})
	log("monitor: kstat fabric exported at /servers/monitor")
	return s, nil
}

// BootLog returns the boot transcript.
func (s *System) BootLog() []string {
	return append([]string(nil), s.bootLog...)
}

// Component is one box of the Figure 1 inventory.
type Component struct {
	Layer string // "microkernel", "services", "shared", "personality"
	Name  string
}

// Inventory enumerates the running structure — experiment E4's data.
func (s *System) Inventory() []Component {
	out := []Component{
		{"microkernel", "IPC/RPC"},
		{"microkernel", "Virtual Memory"},
		{"microkernel", "Tasks and Threads"},
		{"microkernel", "Hosts and Processors"},
		{"microkernel", "I/O Support"},
		{"microkernel", "Clocks and Timers"},
		{"microkernel", "Kernel Synchronizers"},
		{"services", "Bootstrap Task"},
		{"services", "Loading"},
		{"services", "Naming"},
		{"services", "Default Pager"},
		{"services", "Memory Synchronizers"},
		{"shared", "File Server"},
		{"shared", "Networking"},
		{"shared", "Registry"},
		{"shared", "Device Drivers (" + s.Block.Model() + ")"},
		{"shared", "Monitor"},
	}
	if s.OS2 != nil {
		out = append(out, Component{"personality", "OS/2 Server"})
	}
	if s.POSIX != nil {
		out = append(out, Component{"personality", "UNIX Server"})
	}
	if s.MVM != nil {
		out = append(out, Component{"personality", "MVM Server"})
	}
	if s.TalOS != nil {
		out = append(out, Component{"personality", "TalOS Server"})
	}
	return out
}

// RenderFigure1 draws the layer diagram of the running system.
func (s *System) RenderFigure1() string {
	byLayer := map[string][]string{}
	for _, c := range s.Inventory() {
		byLayer[c.Layer] = append(byLayer[c.Layer], c.Name)
	}
	for _, v := range byLayer {
		sort.Strings(v)
	}
	titles := []string{
		"PERSONALITY SERVERS AND APPLICATIONS",
		"SHARED SERVICES (personality-neutral)",
		"MICROKERNEL SERVICES",
		"IBM MICROKERNEL (privileged state)",
	}
	layers := []string{"personality", "shared", "services", "microkernel"}
	width := 0
	for i, l := range layers {
		if n := len(strings.Join(byLayer[l], " | ")) + 4; n > width {
			width = n
		}
		if n := len(titles[i]) + 2; n > width {
			width = n
		}
	}
	var b strings.Builder
	line := strings.Repeat("-", width)
	for i, l := range layers {
		b.WriteString("+" + line + "+\n")
		b.WriteString(fmt.Sprintf("| %-*s |\n", width-2, titles[i]))
		b.WriteString(fmt.Sprintf("|   %-*s |\n", width-4, strings.Join(byLayer[l], " | ")))
	}
	b.WriteString("+" + line + "+\n")
	return b.String()
}

// WorkloadEnv exposes the booted system for the Table 1 suite.
func (s *System) WorkloadEnv() workload.Env {
	return workload.Env{
		Name: "WPOS OS/2",
		NewProcess: func(name string) (workload.OS2Process, error) {
			return s.OS2.CreateProcess(name)
		},
		Eng:      s.Kernel.CPU,
		FB:       s.FB,
		MemoryMB: s.Config.MemoryMB,
	}
}
