package ksync

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
)

func newFactory() (*Factory, *cpu.Engine) {
	eng := cpu.NewEngine(cpu.Pentium133())
	return NewFactory(eng, cpu.NewLayout(0x200000)), eng
}

func TestKSemaphoreBasic(t *testing.T) {
	f, _ := newFactory()
	s := f.NewKSemaphore(2)
	s.Wait()
	s.Wait()
	if s.TryWait() {
		t.Fatal("third wait should fail")
	}
	s.Signal()
	if !s.TryWait() {
		t.Fatal("after signal TryWait should succeed")
	}
	if s.Count() != 0 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestKSemaphoreBlocksAndWakes(t *testing.T) {
	f, _ := newFactory()
	s := f.NewKSemaphore(0)
	done := make(chan struct{})
	go func() {
		s.Wait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("wait on zero semaphore should block")
	default:
	}
	s.Signal()
	<-done
}

func TestKMutexMutualExclusion(t *testing.T) {
	f, _ := newFactory()
	m := f.NewKMutex()
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 800 {
		t.Fatalf("counter = %d, want 800", counter)
	}
}

func TestKMutexTryLock(t *testing.T) {
	f, _ := newFactory()
	m := f.NewKMutex()
	if !m.TryLock() {
		t.Fatal("unlocked mutex must TryLock")
	}
	if m.TryLock() {
		t.Fatal("locked mutex must not TryLock")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("unlocked again")
	}
}

func TestEventBroadcast(t *testing.T) {
	f, _ := newFactory()
	e := f.NewEvent()
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Wait()
		}()
	}
	e.Set()
	wg.Wait()
	if !e.IsSet() {
		t.Fatal("event should remain set")
	}
	// A late waiter passes straight through.
	e.Wait()
	e.Reset()
	if e.IsSet() {
		t.Fatal("event should be reset")
	}
}

func TestMSemaphoreUncontendedNeverTraps(t *testing.T) {
	f, _ := newFactory()
	s := f.NewMSemaphore(1)
	for i := 0; i < 100; i++ {
		s.Wait()
		s.Signal()
	}
	if s.Traps() != 0 {
		t.Fatalf("uncontended ops trapped %d times", s.Traps())
	}
}

func TestMSemaphoreContendedWakes(t *testing.T) {
	f, _ := newFactory()
	s := f.NewMSemaphore(0)
	done := make(chan struct{})
	go func() {
		s.Wait()
		close(done)
	}()
	// Signal until the blocked waiter gets through; the loop only adds
	// count, never consumes it, so it cannot steal the wakeup.
	for {
		select {
		case <-done:
			return
		default:
			s.Signal()
		}
	}
}

func TestMemoryVsKernelCostAsymmetry(t *testing.T) {
	f, eng := newFactory()
	km := f.NewKMutex()
	mm := f.NewMMutex()

	// Warm both paths.
	km.Lock()
	km.Unlock()
	mm.Lock()
	mm.Unlock()

	const N = 100
	base := eng.Counters()
	for i := 0; i < N; i++ {
		km.Lock()
		km.Unlock()
	}
	kc := eng.Counters().Sub(base).Cycles

	base = eng.Counters()
	for i := 0; i < N; i++ {
		mm.Lock()
		mm.Unlock()
	}
	mc := eng.Counters().Sub(base).Cycles

	t.Logf("kernel mutex: %d cycles/pair; memory mutex: %d cycles/pair (ratio %.1f)",
		kc/N, mc/N, float64(kc)/float64(mc))
	if kc < 5*mc {
		t.Fatalf("kernel path should dominate the memory fast path: %d vs %d", kc, mc)
	}
}

func TestMMutexMutualExclusion(t *testing.T) {
	f, _ := newFactory()
	m := f.NewMMutex()
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 800 {
		t.Fatalf("counter = %d, want 800", counter)
	}
}

// Property: semaphore count is never negative and balances after equal
// waits and signals.
func TestPropertySemaphoreBalance(t *testing.T) {
	f := func(initial uint8, rounds uint8) bool {
		fac, _ := newFactory()
		s := fac.NewKSemaphore(int(initial%10) + 1)
		start := s.Count()
		n := int(rounds % 20)
		for i := 0; i < n; i++ {
			s.Wait()
			s.Signal()
		}
		return s.Count() == start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
