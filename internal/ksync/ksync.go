// Package ksync implements the synchronizer component the project added
// to Mach 3.0.  The paper: "Mach 3.0 also had no notion of synchronization
// other than that which can be constructed using the IPC system.  Since
// this was too expensive and too hard to program for many uses, we
// implemented a comprehensive set of synchronizers including both memory-
// and kernel-based locks and semaphores."
//
// Two families are provided:
//
//   - Kernel synchronizers (KSemaphore, KMutex, Event): every operation
//     traps into the kernel and charges the full trap cost.
//   - Memory synchronizers (MSemaphore, MMutex): the uncontended paths
//     are a few user-level instructions on a shared word (the
//     personality-neutral runtime's half); only contention traps.
//
// The cost asymmetry between the two is itself one of the system's design
// points and is measurable via the engine counters.
package ksync

import (
	"sync"

	"repro/internal/cpu"
	"repro/internal/kstat"
)

// Costs holds the calibrated instruction costs of the synchronizer paths.
type Costs struct {
	// KernelOp is the in-kernel work of a kernel-synchronizer
	// operation, beyond the trap itself.
	KernelOp uint64
	// UserFast is the user-level fast path of a memory synchronizer
	// (atomic op on the shared word).
	UserFast uint64
	// TrapCycles mirrors the kernel's privilege-transition cost.
	TrapCycles uint64
}

// DefaultCosts returns the calibrated defaults.
func DefaultCosts() Costs {
	return Costs{KernelOp: 260, UserFast: 18, TrapCycles: 230}
}

// Factory creates synchronizers charging to one engine.
type Factory struct {
	eng   *cpu.Engine
	costs Costs

	kernelPath cpu.Region
	userPath   cpu.Region
}

// NewFactory builds a synchronizer factory over the engine, placing its
// code paths with the given layout.
func NewFactory(eng *cpu.Engine, layout *cpu.Layout) *Factory {
	c := DefaultCosts()
	f := &Factory{eng: eng, costs: c}
	f.kernelPath = layout.PlaceInstr("ksync_kernel", c.KernelOp)
	f.userPath = layout.PlaceInstr("ksync_user_fast", c.UserFast)
	return f
}

func (f *Factory) kernelOp() {
	if st := kstat.For(f.eng); st != nil {
		st.Counter("ksync.kernel_ops").Inc()
	}
	f.eng.Stall(f.costs.TrapCycles)
	f.eng.Exec(f.kernelPath)
}

func (f *Factory) userOp() {
	if st := kstat.For(f.eng); st != nil {
		st.Counter("ksync.user_ops").Inc()
	}
	f.eng.Exec(f.userPath)
}

// KSemaphore is a kernel-based counting semaphore.
type KSemaphore struct {
	f  *Factory
	mu sync.Mutex
	cv *sync.Cond
	n  int
}

// NewKSemaphore creates a kernel semaphore with the given initial count.
func (f *Factory) NewKSemaphore(initial int) *KSemaphore {
	s := &KSemaphore{f: f, n: initial}
	s.cv = sync.NewCond(&s.mu)
	return s
}

// Wait decrements the semaphore, blocking while it is zero.
func (s *KSemaphore) Wait() {
	s.f.kernelOp()
	s.mu.Lock()
	for s.n == 0 {
		s.cv.Wait()
	}
	s.n--
	s.mu.Unlock()
}

// TryWait decrements without blocking; it reports success.
func (s *KSemaphore) TryWait() bool {
	s.f.kernelOp()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return false
	}
	s.n--
	return true
}

// Signal increments the semaphore, waking one waiter.
func (s *KSemaphore) Signal() {
	s.f.kernelOp()
	s.mu.Lock()
	s.n++
	s.cv.Signal()
	s.mu.Unlock()
}

// Count returns the current count.
func (s *KSemaphore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// KMutex is a kernel-based mutual exclusion lock.
type KMutex struct {
	sem *KSemaphore
}

// NewKMutex creates an unlocked kernel mutex.
func (f *Factory) NewKMutex() *KMutex {
	return &KMutex{sem: f.NewKSemaphore(1)}
}

// Lock acquires the mutex.
func (m *KMutex) Lock() { m.sem.Wait() }

// Unlock releases the mutex.
func (m *KMutex) Unlock() { m.sem.Signal() }

// TryLock attempts the lock without blocking.
func (m *KMutex) TryLock() bool { return m.sem.TryWait() }

// Event is a kernel event object: threads wait until it is set; Set wakes
// all current and future waiters until Reset.
type Event struct {
	f   *Factory
	mu  sync.Mutex
	cv  *sync.Cond
	set bool
}

// NewEvent creates a reset event.
func (f *Factory) NewEvent() *Event {
	e := &Event{f: f}
	e.cv = sync.NewCond(&e.mu)
	return e
}

// Wait blocks until the event is set.
func (e *Event) Wait() {
	e.f.kernelOp()
	e.mu.Lock()
	for !e.set {
		e.cv.Wait()
	}
	e.mu.Unlock()
}

// Set signals the event, releasing all waiters.
func (e *Event) Set() {
	e.f.kernelOp()
	e.mu.Lock()
	e.set = true
	e.cv.Broadcast()
	e.mu.Unlock()
}

// Reset clears the event.
func (e *Event) Reset() {
	e.f.kernelOp()
	e.mu.Lock()
	e.set = false
	e.mu.Unlock()
}

// IsSet reports the event state.
func (e *Event) IsSet() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.set
}

// MSemaphore is a memory-based semaphore: its fast path is a user-level
// atomic operation on a word in (conceptually coerced) shared memory; it
// traps only when it must block or wake a blocked waiter.
type MSemaphore struct {
	f       *Factory
	mu      sync.Mutex
	cv      *sync.Cond
	n       int
	waiters int

	// Kernel traps taken, observable for the cost-asymmetry experiment.
	traps uint64
}

// NewMSemaphore creates a memory semaphore with the given initial count.
func (f *Factory) NewMSemaphore(initial int) *MSemaphore {
	s := &MSemaphore{f: f, n: initial}
	s.cv = sync.NewCond(&s.mu)
	return s
}

// Wait decrements, spinning through the user fast path and trapping only
// when the count is exhausted.
func (s *MSemaphore) Wait() {
	s.f.userOp()
	s.mu.Lock()
	if s.n > 0 {
		s.n--
		s.mu.Unlock()
		return
	}
	// Slow path: block in the kernel.
	s.traps++
	s.f.kernelOp()
	s.waiters++
	for s.n == 0 {
		s.cv.Wait()
	}
	s.n--
	s.waiters--
	s.mu.Unlock()
}

// Signal increments; it traps only when a waiter must be woken.
func (s *MSemaphore) Signal() {
	s.f.userOp()
	s.mu.Lock()
	s.n++
	if s.waiters > 0 {
		s.traps++
		s.f.kernelOp()
		s.cv.Signal()
	}
	s.mu.Unlock()
}

// Traps reports how many operations took the kernel slow path.
func (s *MSemaphore) Traps() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traps
}

// Count returns the current count.
func (s *MSemaphore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// MMutex is a memory-based mutex with a user-level fast path.
type MMutex struct {
	sem *MSemaphore
}

// NewMMutex creates an unlocked memory mutex.
func (f *Factory) NewMMutex() *MMutex {
	return &MMutex{sem: f.NewMSemaphore(1)}
}

// Lock acquires the mutex.
func (m *MMutex) Lock() { m.sem.Wait() }

// Unlock releases the mutex.
func (m *MMutex) Unlock() { m.sem.Signal() }

// Traps reports kernel slow-path entries.
func (m *MMutex) Traps() uint64 { return m.sem.Traps() }
