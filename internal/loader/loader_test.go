package loader

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/vm"
)

func newLoader() (*Loader, *vm.System) {
	eng := cpu.NewEngine(cpu.Pentium133())
	sys := vm.NewSystem(64 << 20)
	return New(eng, cpu.NewLayout(0x600000), sys), sys
}

func libImage(name string, exports ...string) *Image {
	img := &Image{
		Name: name, Kind: KindLibrary,
		Text: bytes.Repeat([]byte{0x90}, 256),
		Data: []byte("lib data"),
	}
	for i, e := range exports {
		img.Exports = append(img.Exports, Symbol{Name: e, Offset: uint32(i * 16)})
	}
	return img
}

func progImage(name string, imports ...Import) *Image {
	return &Image{
		Name: name, Kind: KindProgram, Entry: 4,
		Text:    bytes.Repeat([]byte{0xCC}, 512),
		Data:    []byte("prog data"),
		BSSSize: 4096,
		Imports: imports,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := &Image{
		Name: "dos.wlm", Kind: KindProgram, Entry: 42,
		Text: []byte{1, 2, 3}, Data: []byte{4, 5}, BSSSize: 8192,
		Exports: []Symbol{{"main", 0}, {"helper", 100}},
		Imports: []Import{{"libc", "printf"}, {"libos2", "DosOpen"}},
	}
	enc := Encode(img)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Name != img.Name || got.Entry != img.Entry || got.BSSSize != img.BSSSize {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Text, img.Text) || !bytes.Equal(got.Data, img.Data) {
		t.Fatal("segment mismatch")
	}
	if len(got.Exports) != 2 || got.Exports[1].Name != "helper" || got.Exports[1].Offset != 100 {
		t.Fatalf("exports: %+v", got.Exports)
	}
	if len(got.Imports) != 2 || got.Imports[1].Symbol != "DosOpen" {
		t.Fatalf("imports: %+v", got.Imports)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("ELF!")); err != ErrBadMagic {
		t.Fatalf("magic err = %v", err)
	}
	if _, err := Decode(append(Magic[:], 99)); err != ErrBadKind {
		t.Fatalf("kind err = %v", err)
	}
	good := Encode(progImage("p"))
	for _, cut := range []int{6, 10, 20, len(good) - 1} {
		if cut >= len(good) {
			continue
		}
		if _, err := Decode(good[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestLoadProgramWithLibrary(t *testing.T) {
	l, sys := newLoader()
	m := sys.NewMap(0)
	lib := libImage("libc", "printf", "malloc")
	if _, err := l.LoadLibrary(m, lib); err != nil {
		t.Fatalf("LoadLibrary: %v", err)
	}
	prog := progImage("app", Import{"libc", "malloc"})
	ld, err := l.LoadProgram(m, prog)
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	if ld.Entry != ld.TextBase+4 {
		t.Fatalf("entry = %x, text = %x", ld.Entry, ld.TextBase)
	}
	addr, ok := ld.Bindings[Import{"libc", "malloc"}]
	if !ok || addr == 0 {
		t.Fatalf("binding missing: %+v", ld.Bindings)
	}
	// Text actually landed in the space.
	b, err := m.Read(ld.TextBase, 4)
	if err != nil || b[0] != 0xCC {
		t.Fatalf("text not written: %v %v", b, err)
	}
}

func TestUnresolvedImport(t *testing.T) {
	l, sys := newLoader()
	m := sys.NewMap(0)
	prog := progImage("app", Import{"libmissing", "f"})
	if _, err := l.LoadProgram(m, prog); !errors.Is(err, ErrUnresolved) {
		t.Fatalf("err = %v, want ErrUnresolved", err)
	}
	lib := libImage("libc", "printf")
	prog2 := progImage("app2", Import{"libc", "not_exported"})
	l.LoadLibrary(m, lib)
	if _, err := l.LoadProgram(m, prog2); !errors.Is(err, ErrUnresolved) {
		t.Fatalf("missing symbol err = %v", err)
	}
}

func TestKindChecks(t *testing.T) {
	l, sys := newLoader()
	m := sys.NewMap(0)
	if _, err := l.LoadProgram(m, libImage("l")); err != ErrNotProgram {
		t.Fatalf("err = %v", err)
	}
	if _, err := l.LoadLibrary(m, progImage("p")); err != ErrNotLibrary {
		t.Fatalf("err = %v", err)
	}
	if _, err := l.LoadCoercedLibrary(progImage("p")); err != ErrNotLibrary {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateLibrary(t *testing.T) {
	l, sys := newLoader()
	m := sys.NewMap(0)
	l.LoadLibrary(m, libImage("libc", "x"))
	if _, err := l.LoadLibrary(m, libImage("libc", "x")); err != ErrDupLibrary {
		t.Fatalf("err = %v", err)
	}
	// A different map may load the same library privately.
	m2 := sys.NewMap(0)
	if _, err := l.LoadLibrary(m2, libImage("libc", "x")); err != nil {
		t.Fatalf("second space: %v", err)
	}
}

func TestCoercedLibrarySameAddressEverywhere(t *testing.T) {
	l, sys := newLoader()
	lib := libImage("libshared", "entry")
	ld, err := l.LoadCoercedLibrary(lib)
	if err != nil {
		t.Fatalf("LoadCoercedLibrary: %v", err)
	}
	if !ld.Coerced {
		t.Fatal("not marked coerced")
	}
	m1 := sys.NewMap(0)
	m2 := sys.NewMap(0)
	if err := l.AttachCoercedLibraries(m1); err != nil {
		t.Fatalf("attach m1: %v", err)
	}
	if err := l.AttachCoercedLibraries(m2); err != nil {
		t.Fatalf("attach m2: %v", err)
	}
	// Both spaces see the library text at the SAME address.
	b1, err1 := m1.Read(ld.TextBase, 8)
	b2, err2 := m2.Read(ld.TextBase, 8)
	if err1 != nil || err2 != nil || !bytes.Equal(b1, b2) || b1[0] != 0x90 {
		t.Fatalf("coerced text mismatch: %v %v %v %v", b1, err1, b2, err2)
	}
}

func TestCoercedRestrictedResolution(t *testing.T) {
	l, _ := newLoader()
	// A coerced library may not import from a private library.
	dep := libImage("libpriv", "f")
	_ = dep
	needy := libImage("libneedy")
	needy.Imports = []Import{{"libpriv", "f"}}
	if _, err := l.LoadCoercedLibrary(needy); !errors.Is(err, ErrUnresolved) {
		t.Fatalf("err = %v, want ErrUnresolved", err)
	}
	// But coerced-to-coerced imports resolve.
	base := libImage("libbase", "f")
	if _, err := l.LoadCoercedLibrary(base); err != nil {
		t.Fatalf("base: %v", err)
	}
	needy2 := libImage("libneedy2")
	needy2.Imports = []Import{{"libbase", "f"}}
	if _, err := l.LoadCoercedLibrary(needy2); err != nil {
		t.Fatalf("coerced import: %v", err)
	}
}

func TestSeal(t *testing.T) {
	l, sys := newLoader()
	m := sys.NewMap(0)
	l.Seal()
	if !l.Sealed() {
		t.Fatal("not sealed")
	}
	if _, err := l.LoadProgram(m, progImage("late")); err != ErrSealed {
		t.Fatalf("err = %v, want ErrSealed", err)
	}
	// Libraries may still load (personalities share libraries).
	if _, err := l.LoadLibrary(m, libImage("libc", "x")); err != nil {
		t.Fatalf("library after seal: %v", err)
	}
}

func TestLibraryInventory(t *testing.T) {
	l, sys := newLoader()
	m := sys.NewMap(0)
	l.LoadLibrary(m, libImage("a", "x"))
	l.LoadLibrary(m, libImage("b", "y"))
	l.LoadCoercedLibrary(libImage("c", "z"))
	if n := len(l.Libraries(m)); n != 2 {
		t.Fatalf("private libs = %d", n)
	}
	if n := len(l.CoercedLibraries()); n != 1 {
		t.Fatalf("coerced libs = %d", n)
	}
}

// Property: Encode/Decode is the identity on arbitrary images.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(name string, text, data []byte, bss uint32, entry uint32, syms []string) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		img := &Image{Name: name, Kind: KindLibrary, Entry: entry, Text: text, Data: data, BSSSize: bss}
		for i, s := range syms {
			if len(s) > 500 {
				s = s[:500]
			}
			img.Exports = append(img.Exports, Symbol{Name: s, Offset: uint32(i)})
			img.Imports = append(img.Imports, Import{Library: s, Symbol: s})
		}
		got, err := Decode(Encode(img))
		if err != nil {
			return false
		}
		if got.Name != img.Name || got.Entry != img.Entry || got.BSSSize != img.BSSSize {
			return false
		}
		if !bytes.Equal(got.Text, img.Text) || !bytes.Equal(got.Data, img.Data) {
			return false
		}
		if len(got.Exports) != len(img.Exports) || len(got.Imports) != len(img.Imports) {
			return false
		}
		for i := range img.Exports {
			if got.Exports[i] != img.Exports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
