package loader

import (
	"sync"

	"repro/internal/cpu"
	"repro/internal/vm"
)

// Loaded describes a module placed in an address space.
type Loaded struct {
	Image    *Image
	TextBase vm.VAddr
	DataBase vm.VAddr
	BSSBase  vm.VAddr
	Entry    vm.VAddr
	Coerced  bool
	// Bindings maps each import to the resolved absolute address.
	Bindings map[Import]vm.VAddr
}

// Loader is the Microkernel Services loader instance.
type Loader struct {
	eng *cpu.Engine
	sys *vm.System

	loadOp    cpu.Region
	resolveOp cpu.Region

	mu sync.Mutex
	// libraries loaded per address space (SVR4-style private loads).
	perMap map[*vm.Map]map[string]*Loaded
	// coerced libraries: loaded once, attached at the same address in
	// every space, with the restrictive symbol semantics (exports
	// resolve only against the coerced library set).
	coerced map[string]*coercedLib
	sealed  bool
}

type coercedLib struct {
	loaded *Loaded
	region *vm.CoercedRegion
}

// New creates a loader over the VM system.
func New(eng *cpu.Engine, layout *cpu.Layout, sys *vm.System) *Loader {
	return &Loader{
		eng:       eng,
		sys:       sys,
		loadOp:    layout.PlaceInstr("loader_load", 2200),
		resolveOp: layout.PlaceInstr("loader_resolve_sym", 150),
		perMap:    make(map[*vm.Map]map[string]*Loaded),
		coerced:   make(map[string]*coercedLib),
	}
}

// Seal restricts the loader, modeling the final design in which Microkernel
// Services loaded programs only prior to the initialization of the first
// personality; afterwards personalities do their own program loading.
func (l *Loader) Seal() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sealed = true
}

// Sealed reports whether the loader still accepts program loads.
func (l *Loader) Sealed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed
}

func pageRound(n uint64) uint64 {
	return (n + vm.PageSize - 1) &^ (vm.PageSize - 1)
}

// LoadLibrary loads a shared library privately into the map and resolves
// its imports against libraries already loaded there (SVR4 semantics).
func (l *Loader) LoadLibrary(m *vm.Map, img *Image) (*Loaded, error) {
	if img.Kind != KindLibrary {
		return nil, ErrNotLibrary
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	libs := l.perMap[m]
	if libs == nil {
		libs = make(map[string]*Loaded)
		l.perMap[m] = libs
	}
	if _, ok := libs[img.Name]; ok {
		return nil, ErrDupLibrary
	}
	ld, err := l.place(m, img)
	if err != nil {
		return nil, err
	}
	if err := l.resolveLocked(m, ld); err != nil {
		return nil, err
	}
	libs[img.Name] = ld
	return ld, nil
}

// LoadCoercedLibrary loads a library into coerced memory: it occupies the
// same address range in every address space that attaches it.  Symbol
// resolution is restricted: coerced libraries may import only from other
// coerced libraries.
func (l *Loader) LoadCoercedLibrary(img *Image) (*Loaded, error) {
	if img.Kind != KindLibrary {
		return nil, ErrNotLibrary
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.coerced[img.Name]; ok {
		return nil, ErrDupLibrary
	}
	l.eng.Exec(l.loadOp)
	size := pageRound(uint64(len(img.Text))) + pageRound(uint64(len(img.Data))) + pageRound(uint64(img.BSSSize))
	if size == 0 {
		size = vm.PageSize
	}
	region, err := l.sys.AllocateCoerced(size, "lib:"+img.Name)
	if err != nil {
		return nil, err
	}
	// Use a scratch map to populate the region's object once.
	scratch := l.sys.NewMap(0)
	if err := scratch.AttachCoerced(region); err != nil {
		return nil, err
	}
	textBase := region.Start
	dataBase := textBase + vm.VAddr(pageRound(uint64(len(img.Text))))
	bssBase := dataBase + vm.VAddr(pageRound(uint64(len(img.Data))))
	if err := scratch.Write(textBase, img.Text); err != nil {
		return nil, err
	}
	if len(img.Data) > 0 {
		if err := scratch.Write(dataBase, img.Data); err != nil {
			return nil, err
		}
	}
	ld := &Loaded{
		Image: img, TextBase: textBase, DataBase: dataBase, BSSBase: bssBase,
		Coerced: true, Bindings: make(map[Import]vm.VAddr),
	}
	// Restrictive resolution: only against other coerced libraries.
	for _, im := range img.Imports {
		l.eng.Exec(l.resolveOp)
		dep, ok := l.coerced[im.Library]
		if !ok {
			return nil, importError(im)
		}
		addr, ok := exportAddr(dep.loaded, im.Symbol)
		if !ok {
			return nil, importError(im)
		}
		ld.Bindings[im] = addr
	}
	l.coerced[img.Name] = &coercedLib{loaded: ld, region: region}
	return ld, nil
}

// AttachCoercedLibraries attaches every coerced library into the map at
// its fixed address.
func (l *Loader) AttachCoercedLibraries(m *vm.Map) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, cl := range l.coerced {
		if err := m.AttachCoerced(cl.region); err != nil {
			return err
		}
	}
	return nil
}

// LoadProgram loads a program image and resolves its imports against the
// map's private libraries and the coerced set.  Fails once sealed.
func (l *Loader) LoadProgram(m *vm.Map, img *Image) (*Loaded, error) {
	if img.Kind != KindProgram {
		return nil, ErrNotProgram
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return nil, ErrSealed
	}
	ld, err := l.place(m, img)
	if err != nil {
		return nil, err
	}
	if err := l.resolveLocked(m, ld); err != nil {
		return nil, err
	}
	ld.Entry = ld.TextBase + vm.VAddr(img.Entry)
	return ld, nil
}

// place allocates segments in the map and copies text/data in.
func (l *Loader) place(m *vm.Map, img *Image) (*Loaded, error) {
	l.eng.Exec(l.loadOp)
	textSz := pageRound(uint64(len(img.Text)))
	dataSz := pageRound(uint64(len(img.Data)))
	bssSz := pageRound(uint64(img.BSSSize))
	total := textSz + dataSz + bssSz
	if total == 0 {
		total = vm.PageSize
	}
	base, err := m.Allocate(0x0800_0000, total, true)
	if err != nil {
		return nil, err
	}
	ld := &Loaded{
		Image:    img,
		TextBase: base,
		DataBase: base + vm.VAddr(textSz),
		BSSBase:  base + vm.VAddr(textSz+dataSz),
		Bindings: make(map[Import]vm.VAddr),
	}
	if err := m.Write(ld.TextBase, img.Text); err != nil {
		return nil, err
	}
	if len(img.Data) > 0 {
		if err := m.Write(ld.DataBase, img.Data); err != nil {
			return nil, err
		}
	}
	return ld, nil
}

// resolveLocked binds imports against the map's libraries, then the
// coerced set.
func (l *Loader) resolveLocked(m *vm.Map, ld *Loaded) error {
	for _, im := range ld.Image.Imports {
		l.eng.Exec(l.resolveOp)
		var addr vm.VAddr
		found := false
		if libs := l.perMap[m]; libs != nil {
			if dep, ok := libs[im.Library]; ok {
				if a, ok := exportAddr(dep, im.Symbol); ok {
					addr, found = a, true
				}
			}
		}
		if !found {
			if cl, ok := l.coerced[im.Library]; ok {
				if a, ok := exportAddr(cl.loaded, im.Symbol); ok {
					addr, found = a, true
				}
			}
		}
		if !found {
			return importError(im)
		}
		ld.Bindings[im] = addr
	}
	return nil
}

func exportAddr(ld *Loaded, sym string) (vm.VAddr, bool) {
	for _, s := range ld.Image.Exports {
		if s.Name == sym {
			return ld.TextBase + vm.VAddr(s.Offset), true
		}
	}
	return 0, false
}

type unresolvedError struct{ im Import }

func importError(im Import) error { return &unresolvedError{im} }

func (e *unresolvedError) Error() string {
	return "loader: unresolved import " + e.im.Library + ":" + e.im.Symbol
}

// Unwrap lets errors.Is match ErrUnresolved.
func (e *unresolvedError) Unwrap() error { return ErrUnresolved }

// Is reports whether target is ErrUnresolved.
func (e *unresolvedError) Is(target error) bool { return target == ErrUnresolved }

// Libraries reports the libraries privately loaded in a map.
func (l *Loader) Libraries(m *vm.Map) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for name := range l.perMap[m] {
		out = append(out, name)
	}
	return out
}

// CoercedLibraries reports the machine-wide coerced library set.
func (l *Loader) CoercedLibraries() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for name := range l.coerced {
		out = append(out, name)
	}
	return out
}
