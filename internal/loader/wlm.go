// Package loader implements the Microkernel Services program loader.  It
// loads programs and shared libraries into address spaces.  The original
// design gave each address space a single load-module format and loader
// semantics (ELF with SVR4 semantics for personality-neutral code); the
// scheme was later modified to permit mixing personality-neutral and
// personality-specific code in one space and to support address coercion
// of shared libraries with a more restrictive symbol-resolution
// semantics.  The simulated load-module format is WLM ("Workplace Load
// Module"), a compact ELF-like container defined in this file.
package loader

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies a WLM image.
var Magic = [4]byte{'W', 'L', 'M', '1'}

// Kind distinguishes programs from shared libraries.
type Kind uint8

// Image kinds.
const (
	KindProgram Kind = 1
	KindLibrary Kind = 2
)

// Symbol is an exported symbol: a name and an offset into the text
// segment.
type Symbol struct {
	Name   string
	Offset uint32
}

// Import names a symbol required from a library.
type Import struct {
	Library string
	Symbol  string
}

// Image is a parsed WLM load module.
type Image struct {
	Name    string
	Kind    Kind
	Entry   uint32 // offset of the entry point in Text (programs)
	Text    []byte
	Data    []byte
	BSSSize uint32
	Exports []Symbol
	Imports []Import
}

// Errors returned by the WLM codec and loader.
var (
	ErrBadMagic     = errors.New("loader: not a WLM image")
	ErrTruncated    = errors.New("loader: truncated image")
	ErrBadKind      = errors.New("loader: unknown image kind")
	ErrUnresolved   = errors.New("loader: unresolved import")
	ErrNotLibrary   = errors.New("loader: image is not a library")
	ErrNotProgram   = errors.New("loader: image is not a program")
	ErrSealed       = errors.New("loader: loader sealed after personality initialization")
	ErrDupLibrary   = errors.New("loader: library already loaded")
	ErrCoerceNeeded = errors.New("loader: library was linked for coercion")
)

// Encode serializes the image to the WLM wire format.
func Encode(img *Image) []byte {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	buf.WriteByte(byte(img.Kind))
	writeStr := func(s string) {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
		buf.Write(l[:])
		buf.WriteString(s)
	}
	write32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	writeStr(img.Name)
	write32(img.Entry)
	write32(uint32(len(img.Text)))
	buf.Write(img.Text)
	write32(uint32(len(img.Data)))
	buf.Write(img.Data)
	write32(img.BSSSize)
	write32(uint32(len(img.Exports)))
	for _, s := range img.Exports {
		writeStr(s.Name)
		write32(s.Offset)
	}
	write32(uint32(len(img.Imports)))
	for _, im := range img.Imports {
		writeStr(im.Library)
		writeStr(im.Symbol)
	}
	return buf.Bytes()
}

// Decode parses a WLM image.
func Decode(b []byte) (*Image, error) {
	if len(b) < 5 || !bytes.Equal(b[:4], Magic[:]) {
		return nil, ErrBadMagic
	}
	img := &Image{Kind: Kind(b[4])}
	if img.Kind != KindProgram && img.Kind != KindLibrary {
		return nil, ErrBadKind
	}
	p := b[5:]
	readStr := func() (string, error) {
		if len(p) < 2 {
			return "", ErrTruncated
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n {
			return "", ErrTruncated
		}
		s := string(p[:n])
		p = p[n:]
		return s, nil
	}
	read32 := func() (uint32, error) {
		if len(p) < 4 {
			return 0, ErrTruncated
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	readBytes := func() ([]byte, error) {
		n, err := read32()
		if err != nil {
			return nil, err
		}
		if len(p) < int(n) {
			return nil, ErrTruncated
		}
		out := append([]byte(nil), p[:n]...)
		p = p[n:]
		return out, nil
	}
	var err error
	if img.Name, err = readStr(); err != nil {
		return nil, err
	}
	if img.Entry, err = read32(); err != nil {
		return nil, err
	}
	if img.Text, err = readBytes(); err != nil {
		return nil, err
	}
	if img.Data, err = readBytes(); err != nil {
		return nil, err
	}
	if img.BSSSize, err = read32(); err != nil {
		return nil, err
	}
	ne, err := read32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ne; i++ {
		var s Symbol
		if s.Name, err = readStr(); err != nil {
			return nil, err
		}
		if s.Offset, err = read32(); err != nil {
			return nil, err
		}
		img.Exports = append(img.Exports, s)
	}
	ni, err := read32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ni; i++ {
		var im Import
		if im.Library, err = readStr(); err != nil {
			return nil, err
		}
		if im.Symbol, err = readStr(); err != nil {
			return nil, err
		}
		img.Imports = append(img.Imports, im)
	}
	return img, nil
}

func (img *Image) String() string {
	return fmt.Sprintf("WLM %s kind=%d text=%d data=%d bss=%d exports=%d imports=%d",
		img.Name, img.Kind, len(img.Text), len(img.Data), img.BSSSize,
		len(img.Exports), len(img.Imports))
}
