package mvm

import (
	"testing"
	"testing/quick"
)

// dpmiAllocProgram allocates CX bytes of extended memory, stores AX
// (value) at ext[handle][DX], loads it back into BX, and halts.
func dpmiProgram(size, value, offset uint16) []byte {
	a := NewAsm()
	a.MovImm(AX, dpmiAllocExt)
	a.MovImm(CX, size)
	a.Int(IntDPMI) // AX = handle
	a.MovReg(CX, AX)
	a.MovImm(AX, value)
	a.MovImm(DX, offset)
	a.StoreX(AX, CX)
	a.LoadX(BX, CX)
	a.Hlt()
	prog, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return prog
}

func TestDPMIAllocStoreLoad(t *testing.T) {
	r := newRig(t)
	for _, mode := range []ExecMode{Interpret, Translate} {
		v, err := r.srv.NewVM("win.exe", mode)
		if err != nil {
			t.Fatal(err)
		}
		v.Load(dpmiProgram(4096, 0xBEEF, 100))
		if err := v.Run(1000); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if v.Regs[BX] != 0xBEEF {
			t.Fatalf("mode %d: BX = %#x", mode, v.Regs[BX])
		}
		blocks, used, allocs, frees := v.DPMIStats()
		if blocks != 1 || used != 4096 || allocs != 1 || frees != 0 {
			t.Fatalf("stats: %d %d %d %d", blocks, used, allocs, frees)
		}
	}
}

func TestDPMIFreeAndUseAfterFree(t *testing.T) {
	r := newRig(t)
	v, _ := r.srv.NewVM("w", Interpret)
	a := NewAsm()
	a.MovImm(AX, dpmiAllocExt).MovImm(CX, 512).Int(IntDPMI)
	a.MovReg(CX, AX) // handle
	a.MovImm(AX, dpmiFreeExt).MovReg(BX, CX).Int(IntDPMI)
	a.MovImm(DX, 0)
	a.LoadX(BX, CX) // use after free -> guest fault
	a.Hlt()
	prog, _ := a.Assemble()
	v.Load(prog)
	if err := v.Run(1000); err != ErrBadAddress {
		t.Fatalf("use-after-free err = %v", err)
	}
	blocks, used, _, frees := v.DPMIStats()
	if blocks != 0 || used != 0 || frees != 1 {
		t.Fatalf("stats after free: %d %d %d", blocks, used, frees)
	}
}

func TestDPMIFailurePaths(t *testing.T) {
	r := newRig(t)
	v, _ := r.srv.NewVM("w", Interpret)
	// Zero-size allocation fails with AX=0xFFFF.
	a := NewAsm()
	a.MovImm(AX, dpmiAllocExt).MovImm(CX, 0).Int(IntDPMI).Hlt()
	prog, _ := a.Assemble()
	v.Load(prog)
	v.Run(100)
	if v.Regs[AX] != 0xFFFF {
		t.Fatalf("zero alloc AX = %#x", v.Regs[AX])
	}
	// Free of a bogus handle fails.
	b := NewAsm()
	b.MovImm(AX, dpmiFreeExt).MovImm(BX, 999).Int(IntDPMI).Hlt()
	prog, _ = b.Assemble()
	v.Load(prog)
	v.Run(100)
	if v.Regs[AX] != 0xFFFF {
		t.Fatalf("bogus free AX = %#x", v.Regs[AX])
	}
	// Unknown DPMI function fails.
	c := NewAsm()
	c.MovImm(AX, 0x9999).Int(IntDPMI).Hlt()
	prog, _ = c.Assemble()
	v.Load(prog)
	v.Run(100)
	if v.Regs[AX] != 0xFFFF {
		t.Fatalf("unknown fn AX = %#x", v.Regs[AX])
	}
	// Out-of-bounds offset faults.
	d := NewAsm()
	d.MovImm(AX, dpmiAllocExt).MovImm(CX, 16).Int(IntDPMI)
	d.MovReg(CX, AX).MovImm(DX, 64)
	d.LoadX(BX, CX).Hlt()
	prog, _ = d.Assemble()
	v.Load(prog)
	if err := v.Run(100); err != ErrBadAddress {
		t.Fatalf("oob err = %v", err)
	}
}

func TestDPMIQueryFree(t *testing.T) {
	r := newRig(t)
	v, _ := r.srv.NewVM("w", Interpret)
	a := NewAsm()
	a.MovImm(AX, dpmiQueryExt).Int(IntDPMI).Hlt()
	prog, _ := a.Assemble()
	v.Load(prog)
	v.Run(100)
	if v.Regs[AX] != 0xFFFE { // clamped
		t.Fatalf("free = %#x", v.Regs[AX])
	}
}

func TestDPMILimitEnforced(t *testing.T) {
	r := newRig(t)
	v, _ := r.srv.NewVM("hog", Interpret)
	// Allocate 64000-byte blocks until failure; the 1 MiB limit bounds it.
	a := NewAsm()
	a.MovImm(BX, 0) // success counter
	a.Label("loop")
	a.MovImm(AX, dpmiAllocExt)
	a.MovImm(CX, 64000)
	a.Int(IntDPMI)
	a.CmpImm(AX, 0xFFFF)
	a.Jnz("ok")
	a.Hlt()
	a.Label("ok")
	a.Inc(BX)
	a.Jmp("loop")
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	v.Load(prog)
	if err := v.Run(100000); err != nil {
		t.Fatal(err)
	}
	want := uint16(ExtMemLimit / 64000)
	if v.Regs[BX] != want {
		t.Fatalf("allocated %d blocks, want %d", v.Regs[BX], want)
	}
}

// Property: interpreter and translator agree on DPMI programs too.
func TestPropertyDPMIEnginesAgree(t *testing.T) {
	r := newRig(t)
	f := func(size, value, off uint16) bool {
		sz := size%2000 + 16
		o := off % (sz - 2)
		vi, _ := r.srv.NewVM("pi", Interpret)
		vt, _ := r.srv.NewVM("pt", Translate)
		prog := dpmiProgram(sz, value, o)
		vi.Load(prog)
		vt.Load(prog)
		if vi.Run(1000) != nil || vt.Run(1000) != nil {
			return false
		}
		return vi.Regs == vt.Regs && vi.Regs[BX] == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
