package mvm

import "encoding/binary"

// The DOS Protected Mode Interface: MVM "provided multiple DOS and
// Windows 3.1 environments ... as well as implementing the DOS Protected
// Mode Interface (DPMI)".  The reproduction implements the memory half
// that Windows 3.1 actually leaned on: INT 31h extended-memory block
// allocation, with guest access through handle-indexed load/store
// instructions (the stand-in for selector-based far addressing).

// IntDPMI is the DPMI software interrupt.
const IntDPMI = 0x31

// DPMI function codes (in AX).
const (
	dpmiAllocExt = 0x0501 // CX = size in bytes; returns handle in AX
	dpmiFreeExt  = 0x0502 // BX = handle
	dpmiQueryExt = 0x0500 // returns free bytes in AX (capped at 64K-1)
)

// ExtMemLimit bounds a VM's total extended memory (1 MiB, the era's
// "himem" scale).
const ExtMemLimit = 1 << 20

// dpmiState is a VM's protected-mode memory.
type dpmiState struct {
	blocks map[uint16][]byte
	next   uint16
	used   int
	allocs uint64
	frees  uint64
}

func newDPMI() *dpmiState {
	return &dpmiState{blocks: make(map[uint16][]byte), next: 1}
}

// dpmiTrap services INT 31h after reflection.
func (v *VM) dpmiTrap() {
	k := v.srv.k
	k.CPU.Exec(v.srv.vddPath)
	if v.dpmi == nil {
		v.dpmi = newDPMI()
	}
	switch v.Regs[AX] {
	case dpmiAllocExt:
		size := int(v.Regs[CX])
		if size == 0 || v.dpmi.used+size > ExtMemLimit || v.dpmi.next == 0xFFFF {
			v.Regs[AX] = 0xFFFF
			return
		}
		h := v.dpmi.next
		v.dpmi.next++
		v.dpmi.blocks[h] = make([]byte, size)
		v.dpmi.used += size
		v.dpmi.allocs++
		v.Regs[AX] = h
	case dpmiFreeExt:
		h := v.Regs[BX]
		b, ok := v.dpmi.blocks[h]
		if !ok {
			v.Regs[AX] = 0xFFFF
			return
		}
		v.dpmi.used -= len(b)
		delete(v.dpmi.blocks, h)
		v.dpmi.frees++
		v.Regs[AX] = 0
	case dpmiQueryExt:
		free := ExtMemLimit - v.dpmi.used
		if free > 0xFFFE {
			free = 0xFFFE
		}
		v.Regs[AX] = uint16(free)
	default:
		v.Regs[AX] = 0xFFFF
	}
}

// DPMIStats reports extended-memory usage.
func (v *VM) DPMIStats() (blocks int, usedBytes int, allocs, frees uint64) {
	if v.dpmi == nil {
		return 0, 0, 0, 0
	}
	return len(v.dpmi.blocks), v.dpmi.used, v.dpmi.allocs, v.dpmi.frees
}

// extAccess performs a 16-bit load or store in an extended block.
func (v *VM) extAccess(handle uint16, off uint16, r Reg, store bool) error {
	if v.dpmi == nil {
		return ErrBadAddress
	}
	b, ok := v.dpmi.blocks[handle]
	if !ok || int(off)+1 >= len(b) {
		return ErrBadAddress
	}
	if store {
		binary.LittleEndian.PutUint16(b[off:], v.Regs[r])
	} else {
		v.Regs[r] = binary.LittleEndian.Uint16(b[off:])
	}
	return nil
}
