package mvm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/drivers"
	"repro/internal/mach"
	"repro/internal/vfs"
)

type rig struct {
	k       *mach.Kernel
	srv     *Server
	console *drivers.Console
}

func newRig(t testing.TB) *rig {
	t.Helper()
	k := mach.New(cpu.Pentium133())
	fsrv, err := vfs.NewServer(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	fsrv.Mount("/", vfs.NewMemFS())
	console := drivers.NewConsole(k.CPU)
	return &rig{k: k, srv: NewServer(k, fsrv, console), console: console}
}

// sumProgram computes sum(1..n) into AX, stores it at 0x8000, halts.
func sumProgram(n uint16) []byte {
	a := NewAsm()
	a.MovImm(AX, 0).MovImm(BX, n)
	a.Label("loop")
	a.Add(AX, BX)
	a.Dec(BX)
	a.CmpImm(BX, 0)
	a.Jnz("loop")
	a.Store(0x8000, AX)
	a.Hlt()
	prog, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return prog
}

func TestInterpreterSumLoop(t *testing.T) {
	r := newRig(t)
	v, err := r.srv.NewVM("sum.com", Interpret)
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	if err := v.Load(sumProgram(100)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(1 << 20); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Halted() {
		t.Fatal("not halted")
	}
	if v.Regs[AX] != 5050 {
		t.Fatalf("AX = %d, want 5050", v.Regs[AX])
	}
	if got := uint16(v.Mem[0x8000]) | uint16(v.Mem[0x8001])<<8; got != 5050 {
		t.Fatalf("mem = %d", got)
	}
	if v.GuestInstrs == 0 {
		t.Fatal("no instructions counted")
	}
}

func TestTranslatorMatchesInterpreter(t *testing.T) {
	r := newRig(t)
	vi, _ := r.srv.NewVM("i", Interpret)
	vt, _ := r.srv.NewVM("t", Translate)
	prog := sumProgram(250)
	vi.Load(prog)
	vt.Load(prog)
	if err := vi.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if err := vt.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if vi.Regs != vt.Regs {
		t.Fatalf("register mismatch: %v vs %v", vi.Regs, vt.Regs)
	}
	if vi.Mem != vt.Mem {
		t.Fatal("memory mismatch")
	}
	hits, misses, translated := vt.TranslatorStats()
	t.Logf("translator: hits=%d misses=%d translated=%d", hits, misses, translated)
	if misses == 0 || hits == 0 {
		t.Fatal("expected both cold translations and cache hits")
	}
	if hits < misses*10 {
		t.Fatalf("a hot loop should be cache-hit dominated: %d/%d", hits, misses)
	}
}

// TestTranslatedFasterWhenHot is E10: once the translation cache is warm
// the translated engine beats the interpreter; the first run pays the
// translation cost.
func TestTranslatedFasterWhenHot(t *testing.T) {
	r := newRig(t)
	prog := sumProgram(2000)

	vi, _ := r.srv.NewVM("i", Interpret)
	vi.Load(prog)
	base := r.k.CPU.Counters()
	vi.Run(1 << 24)
	interp := r.k.CPU.Counters().Sub(base).Cycles

	vt, _ := r.srv.NewVM("t", Translate)
	vt.Load(prog)
	base = r.k.CPU.Counters()
	vt.Run(1 << 24)
	cold := r.k.CPU.Counters().Sub(base).Cycles

	// Second run reuses the cache (same VM, reloaded program state but
	// identical text at the same addresses).
	vt.Load(prog)
	base = r.k.CPU.Counters()
	vt.Run(1 << 24)
	hot := r.k.CPU.Counters().Sub(base).Cycles

	t.Logf("cycles: interpreted=%d translated(cold)=%d translated(hot)=%d speedup=%.1fx",
		interp, cold, hot, float64(interp)/float64(hot))
	if hot >= interp {
		t.Fatalf("hot translated should beat interpreter: %d vs %d", hot, interp)
	}
	if cold <= hot {
		t.Fatal("cold run should include translation cost")
	}
}

func TestDOSPrintChar(t *testing.T) {
	r := newRig(t)
	v, _ := r.srv.NewVM("hello.com", Interpret)
	a := NewAsm()
	for _, ch := range "DOS!" {
		a.MovImm(AX, uint16(dosPrintChar)<<8)
		a.MovImm(DX, uint16(ch))
		a.Int(IntDOS)
	}
	a.MovImm(AX, uint16(dosExit)<<8).Int(IntDOS)
	prog, _ := a.Assemble()
	v.Load(prog)
	if err := v.Run(1000); err != nil {
		t.Fatal(err)
	}
	if r.console.Contents() != "DOS!" {
		t.Fatalf("console = %q", r.console.Contents())
	}
	if v.Traps != 5 {
		t.Fatalf("traps = %d", v.Traps)
	}
}

func TestDOSFileIO(t *testing.T) {
	r := newRig(t)
	v, _ := r.srv.NewVM("filer.com", Interpret)
	a := NewAsm()
	// Name "OUT.TXT\0" at 0x100; data "hi" at 0x200.
	a.MovImm(AX, uint16(dosCreateFile)<<8)
	a.MovImm(DX, 0x100)
	a.Int(IntDOS)
	a.MovReg(BX, AX) // handle
	a.MovImm(AX, uint16(dosWriteFile)<<8)
	a.MovImm(CX, 2)
	a.MovImm(DX, 0x200)
	a.Int(IntDOS)
	a.MovImm(AX, uint16(dosCloseFile)<<8)
	a.Int(IntDOS)
	a.Hlt()
	prog, _ := a.Assemble()
	v.Load(prog)
	copy(v.Mem[0x100:], []byte("OUT.TXT\x00"))
	copy(v.Mem[0x200:], []byte("hi"))
	if err := v.Run(1000); err != nil {
		t.Fatal(err)
	}
	// Verify through the file server.
	app := r.k.NewTask("checker")
	th, _ := app.NewBoundThread("main")
	c, _ := r.srv.files.NewClient(th, vfs.ProfileOS2)
	attr, err := c.Stat("/OUT.TXT")
	if err != nil || attr.Size != 2 {
		t.Fatalf("file: %+v %v", attr, err)
	}

	// Read it back from a second guest.
	v2, _ := r.srv.NewVM("reader.com", Interpret)
	b := NewAsm()
	b.MovImm(AX, uint16(dosOpenFile)<<8)
	b.MovImm(DX, 0x100)
	b.Int(IntDOS)
	b.MovReg(BX, AX)
	b.MovImm(AX, uint16(dosReadFile)<<8)
	b.MovImm(CX, 2)
	b.MovImm(DX, 0x300)
	b.Int(IntDOS)
	b.Hlt()
	prog2, _ := b.Assemble()
	v2.Load(prog2)
	copy(v2.Mem[0x100:], []byte("OUT.TXT\x00"))
	if err := v2.Run(1000); err != nil {
		t.Fatal(err)
	}
	if string(v2.Mem[0x300:0x302]) != "hi" {
		t.Fatalf("guest read %q", v2.Mem[0x300:0x302])
	}
	if v2.Regs[AX] != 2 {
		t.Fatalf("AX = %d", v2.Regs[AX])
	}
}

func TestMultipleConcurrentGuests(t *testing.T) {
	r := newRig(t)
	var vms []*VM
	for i := 0; i < 4; i++ {
		v, err := r.srv.NewVM("multi", Interpret)
		if err != nil {
			t.Fatal(err)
		}
		v.Load(sumProgram(uint16(10 * (i + 1))))
		vms = append(vms, v)
	}
	if r.srv.Guests() != 4 {
		t.Fatalf("guests = %d", r.srv.Guests())
	}
	want := []uint16{55, 210, 465, 820}
	for i, v := range vms {
		if err := v.Run(1 << 20); err != nil {
			t.Fatal(err)
		}
		if v.Regs[AX] != want[i] {
			t.Fatalf("vm %d: AX = %d want %d", i, v.Regs[AX], want[i])
		}
	}
	vms[0].Exit()
	if r.srv.Guests() != 3 {
		t.Fatalf("guests after exit = %d", r.srv.Guests())
	}
}

func TestRunawayGuestFuel(t *testing.T) {
	r := newRig(t)
	v, _ := r.srv.NewVM("spin", Interpret)
	a := NewAsm()
	a.Label("spin").Jmp("spin")
	prog, _ := a.Assemble()
	v.Load(prog)
	if err := v.Run(1000); err != ErrFuelExhaust {
		t.Fatalf("err = %v", err)
	}
	// Same guard on the translated engine.
	vt, _ := r.srv.NewVM("spin-t", Translate)
	vt.Load(prog)
	if err := vt.Run(1000); err != ErrFuelExhaust {
		t.Fatalf("translated err = %v", err)
	}
}

func TestIllegalOpcode(t *testing.T) {
	r := newRig(t)
	v, _ := r.srv.NewVM("bad", Interpret)
	v.Load([]byte{0xEE})
	if err := v.Run(10); err != ErrBadOpcode {
		t.Fatalf("err = %v", err)
	}
	vt, _ := r.srv.NewVM("bad-t", Translate)
	vt.Load([]byte{0xEE})
	if err := vt.Run(10); err != ErrBadOpcode {
		t.Fatalf("translated err = %v", err)
	}
}

func TestAsmErrors(t *testing.T) {
	a := NewAsm()
	a.Jmp("nowhere")
	if _, err := a.Assemble(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v", err)
	}
	v := &VM{}
	if err := v.Load(make([]byte, GuestMemSize+1)); err != ErrBadAddress {
		t.Fatalf("oversized load: %v", err)
	}
}

// Property: interpreter and translator compute identical machine state
// for arbitrary arithmetic programs.
func TestPropertyEnginesAgree(t *testing.T) {
	r := newRig(t)
	f := func(seed []uint16) bool {
		a := NewAsm()
		a.MovImm(AX, 1).MovImm(BX, 3).MovImm(CX, 7)
		for i, s := range seed {
			if i >= 30 {
				break
			}
			switch s % 6 {
			case 0:
				a.Add(AX, BX)
			case 1:
				a.Sub(BX, CX)
			case 2:
				a.Inc(CX)
			case 3:
				a.Dec(AX)
			case 4:
				a.MovImm(DX, s)
				a.Add(AX, DX)
			case 5:
				a.Store(0x7000+(s%64)*2, AX)
			}
		}
		a.Hlt()
		prog, err := a.Assemble()
		if err != nil {
			return false
		}
		vi, _ := r.srv.NewVM("pi", Interpret)
		vt, _ := r.srv.NewVM("pt", Translate)
		vi.Load(prog)
		vt.Load(prog)
		if vi.Run(1<<20) != nil || vt.Run(1<<20) != nil {
			return false
		}
		return vi.Regs == vt.Regs && vi.Mem == vt.Mem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
