package mvm

import (
	"repro/internal/cpu"
	"repro/internal/mach"
)

// The instruction-set translator: on PowerPC, MVM "included the
// instruction set translator that translated blocks of Intel instructions
// to PowerPC instructions for execution".  The engine scans a basic block
// (up to a control transfer or trap), pays a one-time translation cost
// per guest instruction, caches the result keyed by the block's start
// address, and thereafter executes blocks at near-native cost.

// Translation cost model.
const (
	// translateCostPerInstr is the host work to translate one guest
	// instruction (decode, register map, emit).
	translateCostPerInstr = 90
	// nativeCostPerInstr is the amortized host cost of running one
	// translated guest instruction.
	nativeCostPerInstr = 2
	// dispatchCost is the per-block cache lookup and indirect jump.
	dispatchCost = 10
)

// transBlock is one translated basic block.
type transBlock struct {
	start  uint16
	nInstr uint64
	region cpu.Region
}

// transCache maps block start address to translation.
type transCache struct {
	k      *mach.Kernel
	blocks map[uint16]*transBlock

	// Stats for the E10 sweep.
	Hits       uint64
	Misses     uint64
	Translated uint64 // guest instructions translated
}

func newTransCache(k *mach.Kernel) *transCache {
	return &transCache{k: k, blocks: make(map[uint16]*transBlock)}
}

// instrLen returns the byte length of the instruction at p, and whether
// it ends a basic block.
func instrLen(op byte) (int, bool, error) {
	switch op {
	case opMovImm, opLoad, opStore, opCmpImm:
		return 4, false, nil
	case opMovReg, opAdd, opSub, opLoadIdx, opStoreIdx, opLoadX, opStoreX:
		return 3, false, nil
	case opInc, opDec:
		return 2, false, nil
	case opJmp, opJnz:
		return 3, true, nil
	case opInt:
		return 2, true, nil
	case opHlt:
		return 1, true, nil
	default:
		return 0, false, ErrBadOpcode
	}
}

// translate scans the block at start and pays the translation cost.
func (tc *transCache) translate(v *VM, start uint16) (*transBlock, error) {
	ip := int(start)
	n := uint64(0)
	for {
		if ip >= GuestMemSize {
			return nil, ErrBadAddress
		}
		l, ends, err := instrLen(v.Mem[ip])
		if err != nil {
			return nil, err
		}
		n++
		ip += l
		if ends {
			break
		}
	}
	tc.k.CPU.Instr(n * translateCostPerInstr)
	tc.Translated += n
	b := &transBlock{
		start:  start,
		nInstr: n,
		// Translated code occupies real I-cache space: ~3 host
		// instructions of text per guest instruction.
		region: tc.k.Layout().PlaceInstr("mvm_tblock", n*3),
	}
	tc.blocks[start] = b
	return b, nil
}

// Stats returns cache hit/miss/translated counters.
func (v *VM) TranslatorStats() (hits, misses, translated uint64) {
	return v.tc.Hits, v.tc.Misses, v.tc.Translated
}

// runTranslated executes via the block cache.  Semantics are identical
// to the interpreter: each block's effects are applied by stepping the
// same instruction definitions, but the *cost* charged is the translated
// cost, which is the whole point of the engine.
func (v *VM) runTranslated(fuel uint64) error {
	eng := v.srv.k.CPU
	for !v.halted {
		start := v.IP
		b, ok := v.tc.blocks[start]
		if !ok {
			v.tc.Misses++
			var err error
			b, err = v.tc.translate(v, start)
			if err != nil {
				return err
			}
		} else {
			v.tc.Hits++
		}
		eng.Instr(dispatchCost)
		if fuel < b.nInstr {
			return ErrFuelExhaust
		}
		fuel -= b.nInstr
		// Native execution of the block: charge its translated text
		// and per-instruction cost, then apply the semantics.
		eng.Exec(b.region)
		eng.Instr(b.nInstr * nativeCostPerInstr)
		for i := uint64(0); i < b.nInstr && !v.halted; i++ {
			if err := v.step(); err != nil {
				return err
			}
		}
	}
	return nil
}
