package mvm

import (
	"encoding/binary"
	"sync"

	"repro/internal/cpu"
	"repro/internal/drivers"
	"repro/internal/mach"
	"repro/internal/vfs"
)

// ExecMode selects the guest execution engine.
type ExecMode uint8

// Execution engines.
const (
	// Interpret decodes every guest instruction (the Intel-host path).
	Interpret ExecMode = iota
	// Translate compiles basic blocks and caches them (the PowerPC
	// path's instruction-set translator).
	Translate
)

// DOS interrupt services (a reduced INT 21h).
const (
	IntDOS = 0x21
	// AH values in the high byte of AX.
	dosPrintChar  = 0x02 // DL (low byte of DX) to console
	dosCreateFile = 0x3C // DX = name addr (NUL terminated); returns AX = handle
	dosOpenFile   = 0x3D // DX = name addr; returns AX = handle
	dosCloseFile  = 0x3E // BX = handle
	dosWriteFile  = 0x40 // BX = handle, CX = len, DX = addr
	dosReadFile   = 0x3F // BX = handle, CX = len, DX = addr; AX = bytes read
	dosExit       = 0x4C
)

// Server is the MVM server: it creates per-guest tasks and shares the
// virtual-device plumbing.
type Server struct {
	k       *mach.Kernel
	files   *vfs.Server
	console *drivers.Console

	reflectPath cpu.Region // trap reflection into the per-VM library
	vddPath     cpu.Region // virtual device driver body

	mu     sync.Mutex
	next   int
	guests map[int]*VM
}

// NewServer creates the MVM server.
func NewServer(k *mach.Kernel, files *vfs.Server, console *drivers.Console) *Server {
	return &Server{
		k: k, files: files, console: console,
		reflectPath: k.Layout().PlaceInstr("mvm_trap_reflect", 520),
		vddPath:     k.Layout().PlaceInstr("mvm_vdd", 450),
		guests:      make(map[int]*VM),
	}
}

// VM is one DOS environment in its own microkernel task.
type VM struct {
	srv  *Server
	id   int
	task *mach.Task
	th   *mach.Thread
	fs   *vfs.Client
	mode ExecMode

	Mem  [GuestMemSize]byte
	Regs [NumRegs]uint16
	IP   uint16
	Z    bool

	halted bool
	tc     *transCache
	dpmi   *dpmiState

	mu      sync.Mutex
	nextFH  uint16
	handles map[uint16]*vfs.File

	// Stats.
	GuestInstrs uint64
	Traps       uint64
}

// NewVM boots a guest environment.
func (s *Server) NewVM(name string, mode ExecMode) (*VM, error) {
	task := s.k.NewTask("mvm:" + name)
	th, err := task.NewBoundThread("v86")
	if err != nil {
		return nil, err
	}
	client, err := s.files.NewClient(th, vfs.ProfileOS2) // DOS ≈ OS/2 semantics
	if err != nil {
		return nil, err
	}
	v := &VM{
		srv: s, task: task, th: th, fs: client, mode: mode,
		handles: make(map[uint16]*vfs.File), nextFH: 5,
		tc: newTransCache(s.k),
	}
	s.mu.Lock()
	s.next++
	v.id = s.next
	s.guests[v.id] = v
	s.mu.Unlock()
	return v, nil
}

// Load places a program at guest address 0 and resets the machine.
func (v *VM) Load(program []byte) error {
	if len(program) > GuestMemSize {
		return ErrBadAddress
	}
	for i := range v.Mem {
		v.Mem[i] = 0
	}
	copy(v.Mem[:], program)
	v.Regs = [NumRegs]uint16{}
	v.IP = 0
	v.Z = false
	v.halted = false
	return nil
}

// interpCostPerInstr is the host work to decode and emulate one guest
// instruction in the interpreter.
const interpCostPerInstr = 17

// Run executes until HLT or the fuel budget runs out.
func (v *VM) Run(fuel uint64) error {
	switch v.mode {
	case Translate:
		return v.runTranslated(fuel)
	default:
		return v.runInterpreted(fuel)
	}
}

func (v *VM) runInterpreted(fuel uint64) error {
	eng := v.srv.k.CPU
	for !v.halted {
		if fuel == 0 {
			return ErrFuelExhaust
		}
		fuel--
		eng.Instr(interpCostPerInstr)
		if err := v.step(); err != nil {
			return err
		}
	}
	return nil
}

// step executes one instruction (shared by the interpreter and the
// translator's fallback).
func (v *VM) step() error {
	if int(v.IP) >= GuestMemSize {
		return ErrBadAddress
	}
	v.GuestInstrs++
	op := v.Mem[v.IP]
	switch op {
	case opMovImm:
		r := Reg(v.Mem[v.IP+1])
		v.Regs[r] = binary.LittleEndian.Uint16(v.Mem[v.IP+2:])
		v.IP += 4
	case opMovReg:
		v.Regs[Reg(v.Mem[v.IP+1])] = v.Regs[Reg(v.Mem[v.IP+2])]
		v.IP += 3
	case opAdd:
		r := Reg(v.Mem[v.IP+1])
		v.Regs[r] += v.Regs[Reg(v.Mem[v.IP+2])]
		v.Z = v.Regs[r] == 0
		v.IP += 3
	case opSub:
		r := Reg(v.Mem[v.IP+1])
		v.Regs[r] -= v.Regs[Reg(v.Mem[v.IP+2])]
		v.Z = v.Regs[r] == 0
		v.IP += 3
	case opLoad:
		r := Reg(v.Mem[v.IP+1])
		addr := binary.LittleEndian.Uint16(v.Mem[v.IP+2:])
		v.Regs[r] = binary.LittleEndian.Uint16(v.Mem[addr:])
		v.IP += 4
	case opStore:
		r := Reg(v.Mem[v.IP+1])
		addr := binary.LittleEndian.Uint16(v.Mem[v.IP+2:])
		binary.LittleEndian.PutUint16(v.Mem[addr:], v.Regs[r])
		v.IP += 4
	case opLoadIdx:
		r := Reg(v.Mem[v.IP+1])
		addr := v.Regs[Reg(v.Mem[v.IP+2])]
		if int(addr)+1 >= GuestMemSize {
			return ErrBadAddress
		}
		v.Regs[r] = binary.LittleEndian.Uint16(v.Mem[addr:])
		v.IP += 3
	case opStoreIdx:
		r := Reg(v.Mem[v.IP+1])
		addr := v.Regs[Reg(v.Mem[v.IP+2])]
		if int(addr)+1 >= GuestMemSize {
			return ErrBadAddress
		}
		binary.LittleEndian.PutUint16(v.Mem[addr:], v.Regs[r])
		v.IP += 3
	case opLoadX:
		r := Reg(v.Mem[v.IP+1])
		h := v.Regs[Reg(v.Mem[v.IP+2])]
		if err := v.extAccess(h, v.Regs[DX], r, false); err != nil {
			return err
		}
		v.IP += 3
	case opStoreX:
		r := Reg(v.Mem[v.IP+1])
		h := v.Regs[Reg(v.Mem[v.IP+2])]
		if err := v.extAccess(h, v.Regs[DX], r, true); err != nil {
			return err
		}
		v.IP += 3
	case opJmp:
		v.IP = binary.LittleEndian.Uint16(v.Mem[v.IP+1:])
	case opJnz:
		if !v.Z {
			v.IP = binary.LittleEndian.Uint16(v.Mem[v.IP+1:])
		} else {
			v.IP += 3
		}
	case opCmpImm:
		r := Reg(v.Mem[v.IP+1])
		v.Z = v.Regs[r] == binary.LittleEndian.Uint16(v.Mem[v.IP+2:])
		v.IP += 4
	case opInc:
		r := Reg(v.Mem[v.IP+1])
		v.Regs[r]++
		v.Z = v.Regs[r] == 0
		v.IP += 2
	case opDec:
		r := Reg(v.Mem[v.IP+1])
		v.Regs[r]--
		v.Z = v.Regs[r] == 0
		v.IP += 2
	case opInt:
		n := v.Mem[v.IP+1]
		v.IP += 2
		return v.trap(n)
	case opHlt:
		v.halted = true
		v.IP++
	default:
		return ErrBadOpcode
	}
	return nil
}

// trap reflects a software interrupt into the per-VM shared library,
// which dispatches to virtual device drivers — exactly the paper's
// structure ("the shared libraries handled the traps generated and used
// virtual device drivers to communicate with the real device drivers").
func (v *VM) trap(n byte) error {
	v.Traps++
	k := v.srv.k
	k.Trap(v.srv.reflectPath) // kernel reflection to the library
	if n == IntDPMI {
		v.dpmiTrap()
		return nil
	}
	if n != IntDOS {
		return nil // unknown interrupts are ignored, as MVM did for stray vectors
	}
	ah := byte(v.Regs[AX] >> 8)
	switch ah {
	case dosPrintChar:
		k.CPU.Exec(v.srv.vddPath)
		v.srv.console.WriteString(string(rune(byte(v.Regs[DX]))))
	case dosExit:
		v.halted = true
	case dosCreateFile, dosOpenFile:
		k.CPU.Exec(v.srv.vddPath)
		name := v.cstring(v.Regs[DX])
		f, err := v.fs.Open("/"+name, true, ah == dosCreateFile)
		if err != nil {
			v.Regs[AX] = 0xFFFF
			return nil
		}
		v.mu.Lock()
		h := v.nextFH
		v.nextFH++
		v.handles[h] = f
		v.mu.Unlock()
		v.Regs[AX] = h
	case dosCloseFile:
		k.CPU.Exec(v.srv.vddPath)
		v.mu.Lock()
		f, ok := v.handles[v.Regs[BX]]
		delete(v.handles, v.Regs[BX])
		v.mu.Unlock()
		if ok {
			f.Close()
		}
	case dosWriteFile:
		k.CPU.Exec(v.srv.vddPath)
		v.mu.Lock()
		f, ok := v.handles[v.Regs[BX]]
		v.mu.Unlock()
		if !ok {
			v.Regs[AX] = 0xFFFF
			return nil
		}
		n := int(v.Regs[CX])
		addr := int(v.Regs[DX])
		if addr+n > GuestMemSize {
			return ErrBadAddress
		}
		a, _ := f.Stat()
		wrote, err := f.WriteAt(v.Mem[addr:addr+n], a.Size)
		if err != nil {
			v.Regs[AX] = 0xFFFF
			return nil
		}
		v.Regs[AX] = uint16(wrote)
	case dosReadFile:
		k.CPU.Exec(v.srv.vddPath)
		v.mu.Lock()
		f, ok := v.handles[v.Regs[BX]]
		v.mu.Unlock()
		if !ok {
			v.Regs[AX] = 0xFFFF
			return nil
		}
		n := int(v.Regs[CX])
		addr := int(v.Regs[DX])
		if addr+n > GuestMemSize {
			return ErrBadAddress
		}
		got, err := f.ReadAt(v.Mem[addr:addr+n], 0)
		if err != nil {
			v.Regs[AX] = 0xFFFF
			return nil
		}
		v.Regs[AX] = uint16(got)
	}
	return nil
}

// cstring reads a NUL-terminated guest string.
func (v *VM) cstring(addr uint16) string {
	end := int(addr)
	for end < GuestMemSize && v.Mem[end] != 0 {
		end++
	}
	return string(v.Mem[addr:end])
}

// Halted reports whether the guest executed HLT or exited.
func (v *VM) Halted() bool { return v.halted }

// Exit tears the VM down.
func (v *VM) Exit() {
	v.mu.Lock()
	for _, f := range v.handles {
		f.Close()
	}
	v.handles = make(map[uint16]*vfs.File)
	v.mu.Unlock()
	v.srv.mu.Lock()
	delete(v.srv.guests, v.id)
	v.srv.mu.Unlock()
	v.task.Terminate()
}

// Guests reports live VM count.
func (s *Server) Guests() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.guests)
}
