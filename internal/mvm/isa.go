// Package mvm implements MVM, the multiple-DOS/Windows environment: a
// small server plus per-VM machinery that runs guest binaries in their
// own microkernel tasks, reflects the traps they generate into shared
// libraries, and uses virtual device drivers to reach the real services.
// On PowerPC, MVM included an instruction-set translator that converted
// blocks of Intel instructions for native execution; the reproduction
// implements both an interpreter and a translating engine with a block
// cache over a compact synthetic guest ISA (experiment E10).
package mvm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Reg names a guest register.
type Reg uint8

// Guest registers (16-bit, in the DOS spirit).
const (
	AX Reg = iota
	BX
	CX
	DX
	NumRegs
)

// Opcodes of the guest ISA.
const (
	opMovImm   = 0x01 // MOV r, imm16
	opMovReg   = 0x02 // MOV r, r2
	opAdd      = 0x03 // ADD r, r2
	opSub      = 0x04 // SUB r, r2
	opLoad     = 0x05 // LOAD r, [addr16]
	opStore    = 0x06 // STORE [addr16], r
	opJmp      = 0x07 // JMP addr16
	opJnz      = 0x08 // JNZ addr16
	opCmpImm   = 0x09 // CMP r, imm16 (sets Z)
	opInt      = 0x0A // INT imm8 (software interrupt)
	opHlt      = 0x0B // HLT
	opInc      = 0x0C // INC r
	opDec      = 0x0D // DEC r
	opLoadIdx  = 0x0E // LOAD r, [r2]
	opStoreIdx = 0x0F // STORE [r2], r
	opLoadX    = 0x10 // LOADX r, ext[r2][DX] (DPMI extended memory)
	opStoreX   = 0x11 // STOREX ext[r2][DX], r
)

// GuestMemSize is each VM's address space (one DOS arena).
const GuestMemSize = 64 * 1024

// Errors raised by guest execution.
var (
	ErrBadOpcode   = errors.New("mvm: illegal guest instruction")
	ErrBadAddress  = errors.New("mvm: guest address out of range")
	ErrNotHalted   = errors.New("mvm: program ran past its end")
	ErrFuelExhaust = errors.New("mvm: instruction budget exhausted (runaway guest?)")
)

// Asm builds guest programs.
type Asm struct {
	code []byte
	// labels resolved on Fix.
	fixups map[int]string
	labels map[string]uint16
}

// NewAsm creates an empty program builder.
func NewAsm() *Asm {
	return &Asm{fixups: make(map[int]string), labels: make(map[string]uint16)}
}

func (a *Asm) imm16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	a.code = append(a.code, b[:]...)
}

// Label marks the current position.
func (a *Asm) Label(name string) *Asm {
	a.labels[name] = uint16(len(a.code))
	return a
}

func (a *Asm) ref(name string) {
	a.fixups[len(a.code)] = name
	a.imm16(0)
}

// MovImm emits MOV r, imm.
func (a *Asm) MovImm(r Reg, v uint16) *Asm {
	a.code = append(a.code, opMovImm, byte(r))
	a.imm16(v)
	return a
}

// MovReg emits MOV r, r2.
func (a *Asm) MovReg(r, r2 Reg) *Asm {
	a.code = append(a.code, opMovReg, byte(r), byte(r2))
	return a
}

// Add emits ADD r, r2.
func (a *Asm) Add(r, r2 Reg) *Asm {
	a.code = append(a.code, opAdd, byte(r), byte(r2))
	return a
}

// Sub emits SUB r, r2.
func (a *Asm) Sub(r, r2 Reg) *Asm {
	a.code = append(a.code, opSub, byte(r), byte(r2))
	return a
}

// Load emits LOAD r, [addr].
func (a *Asm) Load(r Reg, addr uint16) *Asm {
	a.code = append(a.code, opLoad, byte(r))
	a.imm16(addr)
	return a
}

// Store emits STORE [addr], r.
func (a *Asm) Store(addr uint16, r Reg) *Asm {
	a.code = append(a.code, opStore, byte(r))
	a.imm16(addr)
	return a
}

// LoadIdx emits LOAD r, [r2].
func (a *Asm) LoadIdx(r, r2 Reg) *Asm {
	a.code = append(a.code, opLoadIdx, byte(r), byte(r2))
	return a
}

// StoreIdx emits STORE [r2], r.
func (a *Asm) StoreIdx(r, r2 Reg) *Asm {
	a.code = append(a.code, opStoreIdx, byte(r), byte(r2))
	return a
}

// Jmp emits JMP label.
func (a *Asm) Jmp(label string) *Asm {
	a.code = append(a.code, opJmp)
	a.ref(label)
	return a
}

// Jnz emits JNZ label.
func (a *Asm) Jnz(label string) *Asm {
	a.code = append(a.code, opJnz)
	a.ref(label)
	return a
}

// CmpImm emits CMP r, imm.
func (a *Asm) CmpImm(r Reg, v uint16) *Asm {
	a.code = append(a.code, opCmpImm, byte(r))
	a.imm16(v)
	return a
}

// Int emits INT n.
func (a *Asm) Int(n byte) *Asm {
	a.code = append(a.code, opInt, n)
	return a
}

// Hlt emits HLT.
func (a *Asm) Hlt() *Asm {
	a.code = append(a.code, opHlt)
	return a
}

// Inc emits INC r.
func (a *Asm) Inc(r Reg) *Asm {
	a.code = append(a.code, opInc, byte(r))
	return a
}

// Dec emits DEC r.
func (a *Asm) Dec(r Reg) *Asm {
	a.code = append(a.code, opDec, byte(r))
	return a
}

// LoadX emits LOADX r, ext[hreg][DX].
func (a *Asm) LoadX(r, hreg Reg) *Asm {
	a.code = append(a.code, opLoadX, byte(r), byte(hreg))
	return a
}

// StoreX emits STOREX ext[hreg][DX], r.
func (a *Asm) StoreX(r, hreg Reg) *Asm {
	a.code = append(a.code, opStoreX, byte(r), byte(hreg))
	return a
}

// Assemble resolves labels and returns the binary.
func (a *Asm) Assemble() ([]byte, error) {
	out := append([]byte(nil), a.code...)
	for pos, name := range a.fixups {
		target, ok := a.labels[name]
		if !ok {
			return nil, fmt.Errorf("mvm: undefined label %q", name)
		}
		binary.LittleEndian.PutUint16(out[pos:], target)
	}
	return out, nil
}
