package ktime

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
)

func newClock() (*Clock, *cpu.Engine) {
	eng := cpu.NewEngine(cpu.Pentium133())
	return NewClock(eng, cpu.NewLayout(0x300000), 133), eng
}

func TestNowAdvancesWithCycles(t *testing.T) {
	c, eng := newClock()
	t0 := c.Now()
	eng.Stall(133_000) // 1ms at 133 MHz
	t1 := c.Now()
	if t1 <= t0 {
		t.Fatalf("time did not advance: %d -> %d", t0, t1)
	}
	if d := t1 - t0; d < uint64Time(900*Microsecond) || d > uint64Time(1100*Microsecond) {
		t.Fatalf("1ms of cycles advanced %dns", d)
	}
}

func uint64Time(d Duration) Time { return Time(d) }

func TestAfterFiresOnceAtDeadline(t *testing.T) {
	c, _ := newClock()
	fired := 0
	c.After(10*Millisecond, func(Time) { fired++ })
	c.Advance(5 * Millisecond)
	if fired != 0 {
		t.Fatal("fired early")
	}
	c.Advance(6 * Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	c.Advance(100 * Millisecond)
	if fired != 1 {
		t.Fatal("one-shot fired again")
	}
	if c.Pending() != 0 {
		t.Fatal("one-shot should leave the queue")
	}
}

func TestEveryRepeats(t *testing.T) {
	c, _ := newClock()
	fired := 0
	tm := c.Every(Millisecond, func(Time) { fired++ })
	c.Advance(Duration(5)*Millisecond + Microsecond)
	if fired < 5 {
		t.Fatalf("fired = %d, want >= 5", fired)
	}
	c.Cancel(tm)
	n := fired
	c.Advance(10 * Millisecond)
	if fired != n {
		t.Fatal("cancelled periodic timer kept firing")
	}
}

func TestCancelBeforeFire(t *testing.T) {
	c, _ := newClock()
	fired := false
	tm := c.After(Millisecond, func(Time) { fired = true })
	if err := c.Cancel(tm); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if err := c.Cancel(tm); err != ErrTimerDead {
		t.Fatalf("double cancel err = %v", err)
	}
	c.Advance(10 * Millisecond)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimersFireInDeadlineOrder(t *testing.T) {
	c, _ := newClock()
	var order []int
	c.After(3*Millisecond, func(Time) { order = append(order, 3) })
	c.After(1*Millisecond, func(Time) { order = append(order, 1) })
	c.After(2*Millisecond, func(Time) { order = append(order, 2) })
	c.Advance(10 * Millisecond)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestDeadlinesSorted(t *testing.T) {
	c, _ := newClock()
	c.After(5*Millisecond, nil)
	c.After(1*Millisecond, nil)
	c.After(3*Millisecond, nil)
	dl := c.Deadlines()
	if len(dl) != 3 {
		t.Fatalf("pending = %d", len(dl))
	}
	for i := 1; i < len(dl); i++ {
		if dl[i] < dl[i-1] {
			t.Fatalf("deadlines not sorted: %v", dl)
		}
	}
}

func TestTimerDuringCallbackReschedules(t *testing.T) {
	c, _ := newClock()
	count := 0
	var arm func(Time)
	arm = func(Time) {
		count++
		if count < 3 {
			c.After(Millisecond, arm)
		}
	}
	c.After(Millisecond, arm)
	c.Advance(10 * Millisecond)
	if count != 3 {
		t.Fatalf("chained count = %d, want 3", count)
	}
}

// Property: after advancing by the max deadline, every armed one-shot
// timer has fired exactly once, regardless of arming order.
func TestPropertyAllTimersFire(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) > 30 {
			ds = ds[:30]
		}
		c, _ := newClock()
		fired := make([]int, len(ds))
		var maxD Duration
		for i, d := range ds {
			dur := Duration(d%1000+1) * Microsecond
			if dur > maxD {
				maxD = dur
			}
			i := i
			c.After(dur, func(Time) { fired[i]++ })
		}
		c.Advance(maxD + Millisecond)
		for _, n := range fired {
			if n != 1 {
				return false
			}
		}
		return c.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelPeriodicFromItsOwnCallback(t *testing.T) {
	c, _ := newClock()
	count := 0
	var tm *Timer
	tm = c.Every(Millisecond, func(Time) {
		count++
		if count == 2 {
			c.Cancel(tm)
		}
	})
	c.Advance(10 * Millisecond)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (self-cancel)", count)
	}
}
