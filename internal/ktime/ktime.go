// Package ktime implements the clocks-and-timers component.  Mach 3.0's
// time management was "very limited"; the project implemented a much more
// extensive one.  The simulated clock is driven by the cost model's cycle
// counter — simulated time is cycles divided by the clock rate — so the
// whole system shares one deterministic notion of time.
package ktime

import (
	"container/heap"
	"errors"
	"sort"
	"sync"

	"repro/internal/cpu"
	"repro/internal/kstat"
)

// Time is a simulated timestamp in nanoseconds since boot.
type Time uint64

// Duration is a simulated span in nanoseconds.
type Duration uint64

// Common durations.
const (
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// ErrTimerDead is returned when operating on a cancelled timer.
var ErrTimerDead = errors.New("ktime: timer cancelled")

// Clock converts engine cycles to simulated time and owns the timer queue.
type Clock struct {
	eng     *cpu.Engine
	mhz     uint64
	readOp  cpu.Region
	adminOp cpu.Region

	mu     sync.Mutex
	timers timerHeap
	nextID uint64
	offset Time // manual advancement for tests and idle periods
}

// NewClock creates a clock over the engine at the given frequency in MHz
// (133 for the paper's machines).
func NewClock(eng *cpu.Engine, layout *cpu.Layout, mhz uint64) *Clock {
	if mhz == 0 {
		mhz = 133
	}
	return &Clock{
		eng:     eng,
		mhz:     mhz,
		readOp:  layout.PlaceInstr("clock_read", 40),
		adminOp: layout.PlaceInstr("timer_admin", 180),
	}
}

// Now returns the current simulated time: elapsed cycles at the clock
// rate, plus any manual advancement.
func (c *Clock) Now() Time {
	if st := kstat.For(c.eng); st != nil {
		st.Counter("ktime.clock_reads").Inc()
	}
	c.eng.Exec(c.readOp)
	cyc := c.eng.Counters().Cycles
	c.mu.Lock()
	off := c.offset
	c.mu.Unlock()
	return Time(cyc*1000/c.mhz) + off
}

// Advance moves simulated time forward by d, firing due timers.  Time
// steps from deadline to deadline, so a callback that re-arms a timer
// within the window sees it fire too — the scheduler and device models
// use this to represent idle waiting without burning simulated cycles.
func (c *Clock) Advance(d Duration) {
	target := c.nowQuiet() + Time(d)
	for {
		c.mu.Lock()
		if len(c.timers) == 0 || c.timers[0].deadline > target {
			c.mu.Unlock()
			break
		}
		deadline := c.timers[0].deadline
		c.mu.Unlock()
		// Step time up to this deadline, then fire everything due.
		if now := c.nowQuiet(); deadline > now {
			c.mu.Lock()
			c.offset += Time(deadline - now)
			c.mu.Unlock()
		}
		c.fireDue()
	}
	if now := c.nowQuiet(); target > now {
		c.mu.Lock()
		c.offset += Time(target - now)
		c.mu.Unlock()
	}
	c.fireDue()
}

// Timer is a one-shot or periodic timer.
type Timer struct {
	id       uint64
	deadline Time
	period   Duration // 0 for one-shot
	fn       func(Time)
	dead     bool
	idx      int
}

// After schedules fn to run (on the caller of Advance/Tick) after d.
func (c *Clock) After(d Duration, fn func(Time)) *Timer {
	return c.schedule(d, 0, fn)
}

// Every schedules fn to run every period, first after one period.
func (c *Clock) Every(period Duration, fn func(Time)) *Timer {
	return c.schedule(period, period, fn)
}

func (c *Clock) schedule(d Duration, period Duration, fn func(Time)) *Timer {
	if st := kstat.For(c.eng); st != nil {
		st.Counter("ktime.timers_set").Inc()
	}
	c.eng.Exec(c.adminOp)
	now := c.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	t := &Timer{id: c.nextID, deadline: now + Time(d), period: period, fn: fn}
	heap.Push(&c.timers, t)
	return t
}

// Cancel stops the timer; firing in progress is not interrupted.
func (c *Clock) Cancel(t *Timer) error {
	c.eng.Exec(c.adminOp)
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.dead {
		return ErrTimerDead
	}
	t.dead = true
	if t.idx >= 0 && t.idx < len(c.timers) && c.timers[t.idx] == t {
		heap.Remove(&c.timers, t.idx)
	}
	return nil
}

// Tick fires any timers due at the current simulated time; the kernel's
// periodic interrupt calls this.
func (c *Clock) Tick() {
	c.fireDue()
}

func (c *Clock) fireDue() {
	for {
		now := c.nowQuiet()
		c.mu.Lock()
		if len(c.timers) == 0 || c.timers[0].deadline > now {
			c.mu.Unlock()
			return
		}
		t := heap.Pop(&c.timers).(*Timer)
		if t.dead {
			c.mu.Unlock()
			continue
		}
		if t.period > 0 {
			t.deadline = now + Time(t.period)
			heap.Push(&c.timers, t)
		} else {
			t.dead = true
		}
		fn := t.fn
		c.mu.Unlock()
		if fn != nil {
			fn(now)
		}
	}
}

// nowQuiet reads time without charging the read path (internal use).
func (c *Clock) nowQuiet() Time {
	cyc := c.eng.Counters().Cycles
	c.mu.Lock()
	off := c.offset
	c.mu.Unlock()
	return Time(cyc*1000/c.mhz) + off
}

// Pending reports the number of armed timers.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// Deadlines returns the sorted pending deadlines (for inspection).
func (c *Clock) Deadlines() []Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Time, len(c.timers))
	for i, t := range c.timers {
		out[i] = t.deadline
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// timerHeap is a min-heap on deadline.
type timerHeap []*Timer

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].deadline < h[j].deadline }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *timerHeap) Push(x interface{}) { t := x.(*Timer); t.idx = len(*h); *h = append(*h, t) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}
