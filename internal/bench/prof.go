package bench

// E-PROF: explain Table 2's CPI with the exact profiler.
//
// Table 2 shows the 32-byte RPC retiring 2.8x the trap's instructions but
// costing 5.3x its cycles — CPI 3.9 against 2.0 — and the paper attributes
// the blow-up "largely to I-cache misses": the RPC path walks far more
// code (client stub, kernel send, server stub, reply) through caches it
// shares with everything else, where the trap's short path stays resident.
// kstat's E-CTR derived the ratios from counters; E-PROF goes one level
// deeper and *decomposes* them.  It profiles exactly one RPC and exactly
// one trap with kprof attached, checks the per-region cycle ledger sums to
// the direct counter measurements cycle-for-cycle (the profiler's
// exactness contract), and splits the RPC-minus-trap cycle gap by stall
// kind — turning the paper's prose attribution into a gated number: the
// I-cache refill share must be the single largest component of the gap.
//
// The single-op bracket is deterministic: every charge of an RPC happens
// before the server's reply commit or in the client's resume path, both
// inside the bracket, and the idle server loop charges nothing between
// replying and blocking in the next receive.

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/kprof"
	"repro/internal/mach"
)

// OpProfile is the exact profile of one operation.
type OpProfile struct {
	Name     string
	Counters cpu.Counters  // bracketed counter delta of the single op
	Profile  kprof.Profile // kprof attribution of the same window
	ByKind   [cpu.NumProfKinds]uint64
	Exact    bool // profile totals == counter delta, cycle-for-cycle
}

// ProfResult is the E-PROF experiment outcome.
type ProfResult struct {
	RPC  OpProfile
	Trap OpProfile

	// GapCycles is the RPC-minus-trap cycle difference; GapByKind splits
	// it by stall kind (signed: a kind can in principle shrink).
	GapCycles int64
	GapByKind [cpu.NumProfKinds]int64

	// Largest is the stall kind contributing the most gap cycles, and
	// LargestShare its fraction of the gap.  The paper's claim is that
	// this is the I-cache ("largely to I-cache misses").
	Largest      cpu.ProfKind
	LargestShare float64
	IMissShare   float64
}

// EPROF builds the Table 2 rig (echo server, 32-byte messages, warmed
// caches), then profiles exactly one RPC and one thread_self trap.
func EPROF() (ProfResult, error) {
	k := mach.New(cpu.Pentium133())
	srv := k.NewTask("server")
	recv, err := srv.AllocatePort()
	if err != nil {
		return ProfResult{}, err
	}
	if _, err := srv.Spawn("loop", func(th *mach.Thread) {
		th.Serve(recv, func(m *mach.Message) *mach.Message { return &mach.Message{Body: m.Body} })
	}); err != nil {
		return ProfResult{}, err
	}
	client := k.NewTask("client")
	sendName, err := client.InsertRight(srv, recv, mach.DispMakeSend)
	if err != nil {
		return ProfResult{}, err
	}
	th, err := client.NewBoundThread("main")
	if err != nil {
		return ProfResult{}, err
	}

	p := kprof.Attach(k.CPU)
	defer kprof.Detach(k.CPU)

	const warm = 50
	body := make([]byte, 32)
	rpc := func() error {
		_, err := th.Call(sendName, &mach.Message{Body: body}, mach.CallOpts{})
		return err
	}
	trap := func() error { th.Self(); return nil }

	// Warm the RPC path to Table 2's steady state, then profile one call.
	for i := 0; i < warm; i++ {
		if err := rpc(); err != nil {
			return ProfResult{}, err
		}
	}
	res := ProfResult{}
	res.RPC, err = profileOne(p, k.CPU, "rpc32", rpc)
	if err != nil {
		return ProfResult{}, err
	}

	// Same for the trap.
	for i := 0; i < warm; i++ {
		trap()
	}
	res.Trap, err = profileOne(p, k.CPU, "thread_self", trap)
	if err != nil {
		return ProfResult{}, err
	}

	res.GapCycles = int64(res.RPC.Counters.Cycles) - int64(res.Trap.Counters.Cycles)
	for kind := cpu.ProfKind(0); kind < cpu.NumProfKinds; kind++ {
		res.GapByKind[kind] = int64(res.RPC.ByKind[kind]) - int64(res.Trap.ByKind[kind])
		if res.GapByKind[kind] > res.GapByKind[res.Largest] {
			res.Largest = kind
		}
	}
	if res.GapCycles != 0 {
		res.LargestShare = float64(res.GapByKind[res.Largest]) / float64(res.GapCycles)
		res.IMissShare = float64(res.GapByKind[cpu.ProfIMiss]) / float64(res.GapCycles)
	}
	return res, nil
}

// profileOne brackets a single operation with an exclusive attribution
// window and the engine's counters, and checks the two agree exactly.
func profileOne(p *kprof.Profiler, eng *cpu.Engine, name string, op func() error) (OpProfile, error) {
	p.Reset()
	p.Enable()
	base := eng.Counters()
	err := op()
	d := eng.Counters().Sub(base)
	p.Disable()
	if err != nil {
		return OpProfile{}, fmt.Errorf("%s: %w", name, err)
	}
	prof := p.Snapshot()
	out := OpProfile{Name: name, Counters: d, Profile: prof}
	for kind := cpu.ProfKind(0); kind < cpu.NumProfKinds; kind++ {
		out.ByKind[kind] = prof.KindCycles(kind)
	}
	cyc, bus, instr := prof.Totals()
	out.Exact = cyc == d.Cycles && bus == d.BusCycles && instr == d.Instructions
	return out, nil
}
