package bench

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/klat"
	"repro/internal/kstat"
)

// Experiment E-TAIL: request-level tail-latency attribution under
// contention.
//
// E-SMP measured throughput; this experiment asks the complementary
// question the paper's performance chapter kept circling — not "how
// many operations per second" but "why is the slow one slow".  Eight
// concurrent OS/2 clients run the FI1 document mix against the pooled
// file server on a 4-engine complex, with the buffer cache sized well
// below the working set so a steady stream of misses chains through
// the single-arm block driver.  Every DosRead/DosWrite's RPC mints a
// klat ledger at the client entry point; the dump at the end carries
// the per-(server, op) latency histograms and the slowest requests'
// full hop-by-hop ledgers.
//
// The attribution the cell exists to demonstrate: the p99 request is
// not slow because the file server's handler got slower — its charged
// service cycles match the median's — but because it queued.  The
// slowest exemplar's modeled-schedule rollup names the wait: the
// block driver's virtual pool has exactly one server (the disk arm),
// so with eight clients missing in the cache, requests stack up
// behind that single arm while the file server's four workers and the
// four engines stay comparatively clear.  The wall-clock ledger
// meanwhile stays a telescoping decomposition of one clock — its hop
// segments sum to the measured end-to-end cycles exactly, because it
// is bookkeeping, not a sampled profile.
const (
	tailCPUs    = 4
	tailClients = 8
	tailPool    = 4
	// tailCacheSectors is deliberately far below the ~160 sectors one
	// client's document mix touches: most operations miss and ride the
	// driver chain, which is what puts queueing in the tail.
	tailCacheSectors = 64
)

// The attribution groups of the modeled (virtual-cycle) rollup.  On a
// multi-engine boot the ledger's wall segments measure global work
// during the request's windows, so "who did this request wait on" is
// answered from the burst schedule the dispatcher settled: every hop
// carries its server burst's charged length, its wait behind the
// destination pool's virtual capacity, and its wait behind engine
// capacity.  The block driver's pool has exactly one virtual server —
// the disk arm — so its pool wait IS arm queueing.
const (
	groupDriverQueue = "driver-queue" // behind the block driver's single arm
	groupPoolQueue   = "pool-queue"   // behind other servers' worker pools
	groupCPUQueue    = "cpu-queue"    // behind engine capacity
	groupService     = "service"      // the chain's own handler charges
)

// TailComponent is one bucket of a p99 attribution rollup.
type TailComponent struct {
	Name   string `json:"name"`
	Cycles uint64 `json:"cycles"`
}

// TailResult is the measured E-TAIL cell.
type TailResult struct {
	CPUs         int `json:"cpus"`
	Clients      int `json:"clients"`
	Pool         int `json:"pool"`
	CacheSectors int `json:"cache_sectors"`

	// Requests counts recorded file-server root ledgers; P50/P99 are
	// quantiles of the merged file-server end-to-end distribution and
	// Inflation their ratio — "the p99 is Nx the median".
	Requests  uint64  `json:"requests"`
	P50       uint64  `json:"p50_cycles"`
	P99       uint64  `json:"p99_cycles"`
	Inflation float64 `json:"inflation"`

	// Slowest is the worst retained file-server exemplar; Breakdown is
	// its modeled-schedule rollup (driver-queue / pool-queue /
	// cpu-queue / service), largest first, in virtual cycles.
	Slowest   klat.HopDump    `json:"slowest"`
	Breakdown []TailComponent `json:"breakdown"`

	// DriverWait is the slowest exemplar's driver-queue bucket — the
	// virtual cycles its chain spent behind the single block-driver
	// arm; Dominant is the largest rollup group ("driver-queue" when
	// the attribution lands where the contention is).
	DriverWait uint64 `json:"driver_wait_cycles"`
	Dominant   string `json:"dominant"`

	// Dump is the full tail snapshot the numbers were reduced from.
	Dump *klat.Dump `json:"-"`
}

func (r TailResult) String() string {
	return fmt.Sprintf("cpus=%d clients=%d pool=%d cache=%d: %d requests p50=%d p99=%d (%.1fx) dominant=%s driver-queue=%d vcycles slowest-e2e=%d",
		r.CPUs, r.Clients, r.Pool, r.CacheSectors, r.Requests, r.P50, r.P99,
		r.Inflation, r.Dominant, r.DriverWait, r.Slowest.E2E)
}

// tailSched walks an exemplar's hop tree accumulating the modeled
// schedule into the rollup groups.
func tailSched(h *klat.HopDump, groups map[string]uint64) {
	if h.Server == "blockdrv" {
		groups[groupDriverQueue] += h.SchedPoolWait
	} else {
		groups[groupPoolQueue] += h.SchedPoolWait
	}
	groups[groupCPUQueue] += h.SchedCPUWait
	groups[groupService] += h.SchedBurst
	for i := range h.Children {
		tailSched(&h.Children[i], groups)
	}
}

// ETail runs the standard E-TAIL cell.
func ETail() (TailResult, error) {
	return TailCell(tailCPUs, tailClients, tailPool, tailCacheSectors)
}

// TailCell boots an ncpu-engine system with a cacheSectors buffer
// cache, runs clients concurrent FI1 mixes against a pool-threaded
// file server, and reduces the tail-latency dump to the attribution
// result.
func TailCell(ncpu, clients, pool, cacheSectors int) (TailResult, error) {
	res := TailResult{CPUs: ncpu, Clients: clients, Pool: pool, CacheSectors: cacheSectors}
	if ncpu < 1 || clients < 1 || pool < 1 || cacheSectors < 1 {
		return res, fmt.Errorf("bench: bad E-TAIL cell cpus=%d clients=%d pool=%d cache=%d", ncpu, clients, pool, cacheSectors)
	}
	cfg := core.DefaultConfig()
	cfg.CPUs = ncpu
	cfg.ServerPool = pool
	cfg.CacheSectors = cacheSectors
	cfg.Personalities = []string{"os2"}
	s, err := core.Boot(cfg)
	if err != nil {
		return res, err
	}
	lt := klat.For(s.Kernel.CPU)
	if lt == nil {
		return res, fmt.Errorf("bench: E-TAIL needs the tail-latency tracker attached")
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := s.OS2.CreateProcess(fmt.Sprintf("tail%d", c))
			if err != nil {
				errs <- err
				return
			}
			if err := smpClientMix(p, fmt.Sprintf("/W%d", c)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return res, err
	}

	res.Dump = lt.Dump()
	return res, reduceTail(&res)
}

// reduceTail fills the summary fields from the dump: the merged
// file-server distribution, the slowest exemplar, and its grouped
// component rollup.
func reduceTail(res *TailResult) error {
	var merged kstat.HistSnapshot
	var slowest *klat.HopDump
	for i := range res.Dump.Families {
		f := &res.Dump.Families[i]
		if f.Server != "fileserver" {
			continue
		}
		merged = merged.Merge(f.E2E)
		for j := range f.Exemplars {
			if slowest == nil || f.Exemplars[j].E2E > slowest.E2E {
				slowest = &f.Exemplars[j]
			}
		}
	}
	if merged.Count == 0 || slowest == nil {
		return fmt.Errorf("bench: E-TAIL recorded no file-server ledgers")
	}
	res.Requests = merged.Count
	res.P50 = merged.Quantile(0.50)
	res.P99 = merged.Quantile(0.99)
	if res.P50 > 0 {
		res.Inflation = float64(res.P99) / float64(res.P50)
	}
	res.Slowest = *slowest

	groups := make(map[string]uint64)
	tailSched(&res.Slowest, groups)
	for name, v := range groups {
		res.Breakdown = append(res.Breakdown, TailComponent{Name: name, Cycles: v})
	}
	sort.Slice(res.Breakdown, func(i, j int) bool {
		if res.Breakdown[i].Cycles != res.Breakdown[j].Cycles {
			return res.Breakdown[i].Cycles > res.Breakdown[j].Cycles
		}
		return res.Breakdown[i].Name < res.Breakdown[j].Name
	})
	res.DriverWait = groups[groupDriverQueue]
	for name, v := range groups {
		if res.Dominant == "" || v > groups[res.Dominant] {
			res.Dominant = name
		}
	}
	return nil
}
