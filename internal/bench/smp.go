package bench

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/drivers"
	"repro/internal/os2"
)

// Experiment E-SMP: measured multiprocessor scaling of the File
// Intensive 1 mix.
//
// E-POOL's modeled bound said what a pool of server threads *could* do on
// N processors; this experiment boots the machine with a real N-engine
// complex and measures it.  C concurrent OS/2 processes each run the
// FI1 document mix in a private directory (/W<i>) against the shared file
// server; every RPC burst is placed by the SMP dispatcher onto an engine
// of the issuing task's processor set, so cycles genuinely land on
// different CPUs.  Elapsed time is the advance of the scheduler's
// virtual clock — the modeled makespan of the burst schedule, in which
// concurrent bursts on one engine serialize and a client resumes only
// after its server's reply completed — and throughput is client file
// operations over that elapsed time.
//
// The sweep runs with the file server's unified buffer cache enabled —
// the configuration in which file operations are CPU work that can
// spread over engines.  Three effects the paper's SMP ambitions would
// have met are visible:
//
//   - pool-scaling crossover: past the server-pool size the extra
//     engines only help the client-side segments; the curve flattens
//     once the file server's worker pool — not the CPU count — is the
//     bottleneck;
//   - migration/coherence tax: stealing moves threads between engines,
//     and every move pays the modeled cross-CPU coherence cost on the
//     destination (cold caches cost extra on top, through the
//     destination's real I/D/TLB state);
//   - driver serialization: with the cache off, every operation chains
//     through the block driver, whose virtual capacity is one server —
//     its bursts are dominated by the device time of a single disk arm
//     — and no CPU count helps.  The pinned variant instead keeps the
//     cache on and confines the driver task to a one-processor set
//     (real processor_assign/task_assign partitioning, the paper's
//     isolation mechanism), showing the bottleneck has moved: the cost
//     is a few percent, not a collapse.

// smpDocs/smpRecs mirror File Intensive 1's document mix (4 documents,
// 40 records written, re-read, 3 updated in place).
const (
	smpDocs = 4
	smpRecs = 40
)

// smpOpsPerClient counts one client's DosRead/DosWrite calls — the
// file-operation unit the throughput numbers are expressed in.
const smpOpsPerClient = smpDocs * (smpRecs + smpRecs + 3)

// smpCacheSectors sizes the buffer cache for the cached E-SMP cells.
const smpCacheSectors = 256

// SMPPoint is one measured cell of the E-SMP sweep.
type SMPPoint struct {
	CPUs    int
	Clients int
	Pool    int
	// CacheSectors is the buffer-cache size this cell ran with (0 = raw
	// driver path).
	CacheSectors int
	// PinnedDriver marks the pset-partition variant: the block-driver
	// task confined to a one-processor set.
	PinnedDriver bool

	// ElapsedCycles is the advance of the dispatcher's virtual clock over
	// the run (the modeled makespan; the busy-cycle delta on one CPU);
	// TotalCycles sums all engines' busy cycles.
	ElapsedCycles uint64
	TotalCycles   uint64
	// PerEngineCycles is each engine's busy-cycle delta, slot-ordered.
	PerEngineCycles []uint64

	// Ops is the total client file operations; OpsPerSec expresses them
	// over the modeled elapsed time at the 133 MHz clock.
	Ops       uint64
	OpsPerSec float64
	// Speedup is OpsPerSec over the 1-CPU point of the same sweep
	// (0 until the sweep fills it in).
	Speedup float64

	// Dispatcher traffic over the run.
	Migrations      uint64
	Steals          uint64
	CoherenceCycles uint64
}

func (p SMPPoint) String() string {
	tag := ""
	if p.CacheSectors == 0 {
		tag += " raw-driver"
	}
	if p.PinnedDriver {
		tag += " driver-pinned"
	}
	return fmt.Sprintf("cpus=%d clients=%d pool=%d%s: %d ops in %d cycles (%.0f ops/s, %.2fx) migrations=%d steals=%d",
		p.CPUs, p.Clients, p.Pool, tag, p.Ops, p.ElapsedCycles, p.OpsPerSec, p.Speedup, p.Migrations, p.Steals)
}

// smpClientMix runs the FI1 document mix inside dir, a per-client
// directory so concurrent clients never contend on a file.
func smpClientMix(p *os2.Process, dir string) error {
	if e := p.DosMkdir(dir); e != os2.NoError && e != os2.ErrInvalidParameter {
		return fmt.Errorf("bench: smp mkdir %s: %v", dir, e)
	}
	record := make([]byte, 512)
	for i := range record {
		record[i] = byte(i)
	}
	buf := make([]byte, 512)
	for doc := 0; doc < smpDocs; doc++ {
		name := fmt.Sprintf("%s/DOC%d.WPS", dir, doc)
		h, e := p.DosOpen(name, true, true)
		if e != os2.NoError {
			return fmt.Errorf("bench: smp open %s: %v", name, e)
		}
		for rec := 0; rec < smpRecs; rec++ {
			if _, e := p.DosWrite(h, record); e != os2.NoError {
				return fmt.Errorf("bench: smp write: %v", e)
			}
		}
		if e := p.DosSetFilePtr(h, 0); e != os2.NoError {
			return fmt.Errorf("bench: smp seek: %v", e)
		}
		for rec := 0; rec < smpRecs; rec++ {
			if _, e := p.DosRead(h, buf); e != os2.NoError {
				return fmt.Errorf("bench: smp read: %v", e)
			}
		}
		for _, rec := range []int64{3, 17, 31} {
			if e := p.DosSetFilePtr(h, rec*512); e != os2.NoError {
				return fmt.Errorf("bench: smp seek2: %v", e)
			}
			if _, e := p.DosWrite(h, record); e != os2.NoError {
				return fmt.Errorf("bench: smp update: %v", e)
			}
		}
		if e := p.DosClose(h); e != os2.NoError {
			return fmt.Errorf("bench: smp close: %v", e)
		}
	}
	return nil
}

// SMPCell boots an ncpu-engine system and measures clients concurrent
// FI1 mixes against a pool-threaded file server with a cacheSectors
// buffer cache (0 = the raw driver path).  pinDriver confines the
// block-driver task to a one-processor set first (requires ncpu >= 2).
func SMPCell(ncpu, clients, pool, cacheSectors int, pinDriver bool) (SMPPoint, error) {
	pt := SMPPoint{CPUs: ncpu, Clients: clients, Pool: pool, CacheSectors: cacheSectors, PinnedDriver: pinDriver}
	if ncpu < 1 || clients < 1 || pool < 1 {
		return pt, fmt.Errorf("bench: bad E-SMP cell cpus=%d clients=%d pool=%d", ncpu, clients, pool)
	}
	cfg := core.DefaultConfig()
	cfg.CPUs = ncpu
	cfg.ServerPool = pool
	cfg.CacheSectors = cacheSectors
	cfg.Personalities = []string{"os2"}
	s, err := core.Boot(cfg)
	if err != nil {
		return pt, err
	}
	k := s.Kernel

	if pinDriver {
		if ncpu < 2 {
			return pt, fmt.Errorf("bench: driver pinning needs >= 2 CPUs")
		}
		ubd, ok := s.Block.(*drivers.UserBlockDriver)
		if !ok {
			return pt, fmt.Errorf("bench: driver pinning needs the user-level block driver, have %s", s.Block.Model())
		}
		h := k.Host()
		set, err := h.CreateSet("driver")
		if err != nil {
			return pt, err
		}
		// The last processor leaves the default set; everything else keeps
		// engines 0..ncpu-2, the driver serializes on engine ncpu-1.
		h.AssignProcessor(h.Processors()[ncpu-1], set)
		set.AssignTask(ubd.Task())
	}

	// Per-engine busy-cycle and virtual-clock baselines (boot is excluded
	// from the measure; the makespan is the virtual clock's advance).
	base := make([]uint64, ncpu)
	var vtBase uint64
	if cx := k.Complex(); cx != nil {
		for slot := range base {
			base[slot] = cx.EngineCounters(slot).Cycles
		}
	} else {
		base[0] = k.CPU.Counters().Cycles
	}
	var migBase, stealBase uint64
	for _, st := range k.SchedStats() {
		migBase += st.Migrations
		stealBase += st.Steals
		if st.Virtual > vtBase {
			vtBase = st.Virtual
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := s.OS2.CreateProcess(fmt.Sprintf("works%d", c))
			if err != nil {
				errs <- err
				return
			}
			if err := smpClientMix(p, fmt.Sprintf("/W%d", c)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return pt, err
	}

	pt.PerEngineCycles = make([]uint64, ncpu)
	if cx := k.Complex(); cx != nil {
		for slot := range pt.PerEngineCycles {
			d := cx.EngineCounters(slot).Cycles - base[slot]
			pt.PerEngineCycles[slot] = d
			pt.TotalCycles += d
		}
	} else {
		d := k.CPU.Counters().Cycles - base[0]
		pt.PerEngineCycles[0] = d
		pt.TotalCycles = d
		pt.ElapsedCycles = d
	}
	var vtEnd uint64
	for _, st := range k.SchedStats() {
		pt.Migrations += st.Migrations
		pt.Steals += st.Steals
		if st.Virtual > vtEnd {
			vtEnd = st.Virtual
		}
	}
	if k.Complex() != nil {
		pt.ElapsedCycles = vtEnd - vtBase
	}
	pt.Migrations -= migBase
	pt.Steals -= stealBase
	pt.CoherenceCycles = pt.Migrations * k.CPU.Config().MigrateCycles

	pt.Ops = uint64(clients) * smpOpsPerClient
	if pt.ElapsedCycles > 0 {
		pt.OpsPerSec = float64(pt.Ops) * concHz / float64(pt.ElapsedCycles)
	}
	return pt, nil
}

// SMPResult is the full E-SMP data set.
type SMPResult struct {
	// Curve is the cached CPU sweep at fixed clients/pool; Speedup is
	// relative to Curve[0] (the 1-CPU cell).
	Curve []SMPPoint
	// Raw is the cache-off cell at the bottleneck CPU count: every
	// operation chains through the single-threaded block driver and its
	// device time, so the makespan is that serial chain and the CPU
	// count stops mattering.
	Raw SMPPoint
	// Pinned is the processor-set variant of the bottleneck: the cached
	// configuration with the driver task confined to one processor.
	Pinned SMPPoint
}

// ESMP runs the standard E-SMP sweep: 1..16 engines under 8 clients and
// a 4-thread server pool, plus the raw-driver and driver-pinned
// bottleneck cells at 4 engines.
func ESMP() (SMPResult, error) {
	return SMPSweep([]int{1, 2, 4, 8, 16}, 8, 4, 4)
}

// SMPSweep measures the cached scaling curve over cpusList and the two
// bottleneck cells at bottleneckCPUs (skipped when bottleneckCPUs < 2).
// Speedups are relative to the first cell of the curve.
func SMPSweep(cpusList []int, clients, pool, bottleneckCPUs int) (SMPResult, error) {
	var res SMPResult
	var baseOps float64
	rel := func(pt *SMPPoint) {
		if baseOps > 0 {
			pt.Speedup = pt.OpsPerSec / baseOps
		}
	}
	for _, n := range cpusList {
		pt, err := SMPCell(n, clients, pool, smpCacheSectors, false)
		if err != nil {
			return res, err
		}
		if baseOps == 0 {
			baseOps = pt.OpsPerSec
		}
		rel(&pt)
		res.Curve = append(res.Curve, pt)
	}
	if bottleneckCPUs >= 2 {
		raw, err := SMPCell(bottleneckCPUs, clients, pool, 0, false)
		if err != nil {
			return res, err
		}
		rel(&raw)
		res.Raw = raw
		pin, err := SMPCell(bottleneckCPUs, clients, pool, smpCacheSectors, true)
		if err != nil {
			return res, err
		}
		rel(&pin)
		res.Pinned = pin
	}
	return res, nil
}
