package bench

import "testing"

// TestAttributionFileIntensive1 is the E-ATTR gate: the traced run must be
// bit-identical to the untraced run (observation-only tracing), nothing
// may fall out of the ring, and the boundary-crossing subsystems must
// explain at least 60% of the WPOS-vs-native cycle gap.
func TestAttributionFileIntensive1(t *testing.T) {
	res, err := Attribution("File Intensive 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.TracedCycles != res.WPOSCycles {
		t.Errorf("tracing perturbed the run: traced %d cycles, untraced %d",
			res.TracedCycles, res.WPOSCycles)
	}
	if res.Dropped != 0 {
		t.Errorf("trace ring wrapped: %d events dropped", res.Dropped)
	}
	if res.Gap == 0 {
		t.Fatalf("no WPOS-vs-native gap to attribute (wpos %d, native %d)",
			res.WPOSCycles, res.NativeCycles)
	}
	if res.CrossingShare < 0.60 {
		t.Errorf("crossing subsystems explain only %.1f%% of the gap, want >= 60%%\nattribution: %+v",
			100*res.CrossingShare, res.Subsystems)
	}
	if len(res.Subsystems) < 3 {
		t.Errorf("attribution saw only %d subsystems: %+v", len(res.Subsystems), res.Subsystems)
	}
}
