package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mach"
	"repro/internal/workload"
)

// E-XFER: the transfer-mode sweep behind the zero-copy and vectored-RPC
// redesign.  A reworked-RPC round trip carries the same payload three
// ways — copied (inline or out of line), mapped by shared-memory region
// descriptor, and batched eight sub-requests to a carrier crossing —
// and the per-transfer cycle cost shows where copy cost stops
// dominating crossing cost: copying wins while the payload is small
// (a region charges per page mapped, a copy per byte moved), the
// region path wins from a page up, and batching amortizes the fixed
// crossing cost that dominates small transfers.

// XferBatch is the sub-request count of the batched mode.
const XferBatch = 8

// XferSizes is the payload sweep of experiment E-XFER.
var XferSizes = []int{32, 256, 1024, 4096, 16384, 65536}

// XferRow is one payload size of the sweep: cycles per transferred
// payload under each mode (the batched column is per sub-request, i.e.
// the carrier round trip divided by XferBatch).
type XferRow struct {
	Size    int
	Copy    uint64
	Region  uint64
	Batched uint64
}

// XferSweep measures the three transfer modes across XferSizes.
func XferSweep() ([]XferRow, error) {
	var out []XferRow
	for _, size := range XferSizes {
		row := XferRow{Size: size}
		var err error
		if row.Copy, err = xferCost(size, "copy"); err != nil {
			return nil, err
		}
		if row.Region, err = xferCost(size, "region"); err != nil {
			return nil, err
		}
		if row.Batched, err = xferCost(size, "batched"); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// xferMsg builds one request carrying size payload bytes.  Copied
// payloads ride inline up to InlineMax and out of line past it, exactly
// like the vfs hot path; region payloads ride a single descriptor.
func xferMsg(size int, region bool) *mach.Message {
	if region {
		return &mach.Message{Regions: []mach.RegionDesc{{Len: uint64(size), Data: make([]byte, size)}}}
	}
	if size <= mach.InlineMax {
		return &mach.Message{Body: make([]byte, size)}
	}
	return &mach.Message{OOL: make([]byte, size)}
}

// xferCost measures one mode at one size: cycles per payload delivered
// to the server (per call for copy/region, per sub-request for
// batched).
func xferCost(size int, mode string) (uint64, error) {
	k := mach.New(cpu.Pentium133())
	srv := k.NewTask("server")
	recv, err := srv.AllocatePort()
	if err != nil {
		return 0, err
	}
	sink := func(m *mach.Message) *mach.Message { return &mach.Message{} }
	if _, err := srv.Spawn("loop", func(th *mach.Thread) { th.Serve(recv, sink) }); err != nil {
		return 0, err
	}
	client := k.NewTask("client")
	sendName, err := client.InsertRight(srv, recv, mach.DispMakeSend)
	if err != nil {
		return 0, err
	}
	th, err := client.NewBoundThread("main")
	if err != nil {
		return 0, err
	}
	call := func() error {
		switch mode {
		case "copy":
			_, err := th.Call(sendName, xferMsg(size, false), mach.CallOpts{})
			return err
		case "region":
			_, err := th.Call(sendName, xferMsg(size, true), mach.CallOpts{})
			return err
		case "batched":
			reqs := make([]*mach.Message, XferBatch)
			for i := range reqs {
				reqs[i] = xferMsg(size, false)
			}
			_, err := th.CallV(sendName, reqs, mach.CallOpts{})
			return err
		default:
			return fmt.Errorf("bench: unknown xfer mode %q", mode)
		}
	}
	const warm, N = 20, 100
	for i := 0; i < warm; i++ {
		if err := call(); err != nil {
			return 0, err
		}
	}
	base := k.CPU.Counters()
	for i := 0; i < N; i++ {
		if err := call(); err != nil {
			return 0, err
		}
	}
	per := k.CPU.Counters().Sub(base).Cycles / N
	if mode == "batched" {
		per /= XferBatch
	}
	return per, nil
}

// XferFIResult compares the file-intensive Table 1 ratios with the
// bulk-transfer features off and on, over the same buffer-cache size
// (the features only matter on the cached path: the FI mixes do 512 B
// I/O, so the gains come from page-sized read-ahead fills and vectored
// write-behind flushes at the driver crossing).
type XferFIResult struct {
	CacheSectors   int
	OffFI1, OffFI2 float64 // WPOS/native ratio, ZeroCopy=Batch=false
	OnFI1, OnFI2   float64 // WPOS/native ratio, ZeroCopy=Batch=true
}

// XferFI measures the file-intensive rows both ways at cacheSectors.
func XferFI(cacheSectors int) (XferFIResult, error) {
	fiRows := []workload.Row{workload.FileIntensive1, workload.FileIntensive2}
	cfg := core.DefaultConfig()
	cfg.CacheSectors = cacheSectors
	off, err := table1Rows(cfg, fiRows)
	if err != nil {
		return XferFIResult{}, err
	}
	cfg.ZeroCopy = true
	cfg.BatchRPC = true
	on, err := table1Rows(cfg, fiRows)
	if err != nil {
		return XferFIResult{}, err
	}
	return XferFIResult{
		CacheSectors: cacheSectors,
		OffFI1:       off[0].Ratio, OffFI2: off[1].Ratio,
		OnFI1: on[0].Ratio, OnFI2: on[1].Ratio,
	}, nil
}
