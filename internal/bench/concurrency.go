package bench

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cpu"
	"repro/internal/ktrace"
	"repro/internal/mach"
	"repro/internal/vfs"
)

// Experiment E-POOL: multi-threaded server pools over port sets.
//
// The paper's Release 2 work made the servers multi-threaded so that a
// single personality server could field requests from many clients at
// once.  The simulation runs on one host CPU and a single modeled cycle
// engine, so raw wall-clock throughput of the concurrent phase says
// nothing about SMP scaling; instead the experiment is split:
//
//  1. a SERIAL calibration run, traced with ktrace, decomposes one
//     file-server operation into the client+kernel segment c (stubs,
//     traps, copies, address-space switches, resume) and the
//     server-occupancy segment h (handler plus reply delivery, measured
//     from the EvRPCServe spans that both Serve and ServerPool emit
//     around exactly that segment);
//  2. the modeled throughput of C clients against a pool of P server
//     threads follows the closed-system bottleneck bound
//         X(C,P) = min(C/(c+h), P/h) cycles^-1
//     — with one server thread the server is the bottleneck as soon as
//     C > (c+h)/h; with P threads the knee moves out by a factor of P;
//  3. a REAL concurrent phase (C goroutine clients hammering the pooled
//     server) exercises the liveness and safety of the pool under the
//     race detector and reports how the requests spread across workers.
//
// The serial cycles-per-op number doubles as the single-client latency
// gate: growing the pool must not change it.

// concHz is the modeled clock of the Pentium 133 engine every experiment
// boots (see cpu.Pentium133 and the 133 MHz ktime clock), used to express
// the modeled bound in operations per second.
const concHz = 133e6

// concOpBytes is the payload of the measured operation: a 4 KiB ReadAt,
// the file-server op whose reply copy makes the server segment dominant —
// the case pools exist for.
const concOpBytes = 4096

// concCalOps is the number of serial operations averaged during
// calibration.
const concCalOps = 64

// ConcurrencyResult is one cell of the E-POOL sweep.
type ConcurrencyResult struct {
	Clients int
	Pool    int

	// CyclesPerOp is the serial single-client round trip c+h; it must be
	// independent of Pool (single-client latency is not taxed).
	CyclesPerOp float64
	// ServerCycles is h, the server-occupancy segment per op, calibrated
	// from the EvRPCServe spans of the serial run.  ClientCycles is c.
	ServerCycles float64
	ClientCycles float64

	// ModeledOpsPerSec is the bottleneck bound min(C/(c+h), P/h)*Hz.
	ModeledOpsPerSec float64

	// RealOps counts operations completed by the real concurrent phase;
	// WorkerOps is the per-worker distribution across the file pool
	// (nil for pool<=1, where dedicated per-file threads serve).
	RealOps   uint64
	WorkerOps []uint64
}

func (r ConcurrencyResult) String() string {
	return fmt.Sprintf("clients=%d pool=%d serial=%.0fcy/op (server %.0f, client %.0f) modeled=%.0f ops/s",
		r.Clients, r.Pool, r.CyclesPerOp, r.ServerCycles, r.ClientCycles, r.ModeledOpsPerSec)
}

// ConcurrentClients runs E-POOL for one (clients, pool) cell with
// opsPerClient operations per client in the real concurrent phase.
func ConcurrentClients(clients, pool, opsPerClient int) (ConcurrencyResult, error) {
	res := ConcurrencyResult{Clients: clients, Pool: pool}
	if clients < 1 || pool < 1 || opsPerClient < 1 {
		return res, fmt.Errorf("bench: bad E-POOL cell clients=%d pool=%d ops=%d", clients, pool, opsPerClient)
	}

	k := mach.New(cpu.Pentium133())
	srv, err := vfs.NewServer(k, pool)
	if err != nil {
		return res, err
	}
	if err := srv.Mount("/", vfs.NewMemFS()); err != nil {
		return res, err
	}

	// --- Serial calibration ------------------------------------------------
	cal := k.NewTask("cal")
	calTh, err := cal.NewBoundThread("main")
	if err != nil {
		return res, err
	}
	calCl, err := srv.NewClient(calTh, vfs.ProfileOS2)
	if err != nil {
		return res, err
	}
	f, err := calCl.Open("/cal.dat", true, true)
	if err != nil {
		return res, err
	}
	payload := make([]byte, concOpBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		return res, err
	}
	buf := make([]byte, concOpBytes)
	// Warm the path once untraced so calibration sees the steady state.
	if _, err := f.ReadAt(buf, 0); err != nil {
		return res, err
	}

	tr := ktrace.AttachSized(k.CPU, 1<<15)
	start := k.CPU.Counters().Cycles
	for i := 0; i < concCalOps; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			ktrace.Detach(k.CPU)
			return res, err
		}
	}
	total := k.CPU.Counters().Cycles - start
	events := tr.Events()
	dropped := tr.Dropped()
	ktrace.Detach(k.CPU)
	if dropped != 0 {
		return res, fmt.Errorf("bench: E-POOL calibration trace dropped %d events", dropped)
	}

	serverCycles, spans, err := sumServeSpans(events, "serve:fileserver")
	if err != nil {
		return res, err
	}
	if spans < concCalOps {
		return res, fmt.Errorf("bench: E-POOL calibration saw %d serve spans for %d ops", spans, concCalOps)
	}
	res.CyclesPerOp = float64(total) / concCalOps
	res.ServerCycles = float64(serverCycles) / float64(spans)
	res.ClientCycles = res.CyclesPerOp - res.ServerCycles
	if res.ClientCycles < 0 {
		res.ClientCycles = 0
	}
	if err := f.Close(); err != nil {
		return res, err
	}

	// --- Modeled throughput ------------------------------------------------
	// Closed-system bottleneck bound: each of the C clients cycles through
	// c+h of work per op, of which h occupies one of the P server threads.
	demand := res.CyclesPerOp
	perServer := res.ServerCycles / float64(pool)
	bottleneck := demand / float64(clients)
	if perServer > bottleneck {
		bottleneck = perServer
	}
	res.ModeledOpsPerSec = concHz / bottleneck

	// --- Real concurrent phase --------------------------------------------
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := k.NewTask(fmt.Sprintf("client%d", c))
			defer task.Terminate()
			th, err := task.NewBoundThread("main")
			if err != nil {
				errs <- err
				return
			}
			cl, err := srv.NewClient(th, vfs.ProfileOS2)
			if err != nil {
				errs <- err
				return
			}
			cf, err := cl.Open(fmt.Sprintf("/c%d.dat", c), true, true)
			if err != nil {
				errs <- err
				return
			}
			defer cf.Close()
			if _, err := cf.WriteAt(payload, 0); err != nil {
				errs <- err
				return
			}
			b := make([]byte, concOpBytes)
			for i := 0; i < opsPerClient; i++ {
				if _, err := cf.ReadAt(b, 0); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", c, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return res, err
	}
	res.RealOps = uint64(clients * opsPerClient)
	if fp := srv.FilePool(); fp != nil {
		res.WorkerOps = fp.WorkerOps()
	}
	return res, nil
}

// sumServeSpans pairs EvRPCServe begin/end events by span ID and sums the
// cycle widths of spans whose name carries the given prefix.
func sumServeSpans(events []ktrace.Event, prefix string) (cycles uint64, spans int, err error) {
	open := make(map[uint64]uint64)
	for _, ev := range events {
		if ev.Type != ktrace.EvRPCServe || !strings.HasPrefix(ev.Name, prefix) {
			continue
		}
		switch ev.Phase {
		case ktrace.PhaseBegin:
			open[ev.SpanID] = ev.Ctr.Cycles
		case ktrace.PhaseEnd:
			begin, ok := open[ev.SpanID]
			if !ok {
				return 0, 0, fmt.Errorf("bench: serve span %d ended without a begin", ev.SpanID)
			}
			delete(open, ev.SpanID)
			cycles += ev.Ctr.Cycles - begin
			spans++
		}
	}
	if len(open) != 0 {
		return 0, 0, fmt.Errorf("bench: %d serve spans never ended", len(open))
	}
	return cycles, spans, nil
}
