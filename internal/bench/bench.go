// Package bench implements the experiment harness: each function
// regenerates one table or figure of the paper (or one ablation the
// evaluation argues from) and returns structured results.  The root
// bench_test.go and cmd/benchtables are thin layers over this package.
package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/drivers"
	"repro/internal/fat"
	"repro/internal/hpfs"
	"repro/internal/iosys"
	"repro/internal/jfs"
	"repro/internal/mach"
	"repro/internal/mvm"
	"repro/internal/names"
	"repro/internal/netsvc"
	"repro/internal/os2"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Row     workload.Row
	Content string
	WPOS    uint64
	Native  uint64
	Ratio   float64
	Paper   float64
}

// paperTable1 holds the published ratios.
var paperTable1 = map[workload.Row]float64{
	workload.FileIntensive1:  2.96,
	workload.FileIntensive2:  2.97,
	workload.GraphicsLow:     0.91,
	workload.GraphicsMedium:  0.87,
	workload.GraphicsHigh:    0.71,
	workload.PMTaskingMedium: 0.82,
	workload.PMTaskingHigh:   1.02,
}

// Table1 reruns the OS/2 comparison suite: WPOS OS/2 (64 MB, multi-server,
// user-level driver) against native OS/2 (16 MB, monolithic).
func Table1() ([]Table1Row, error) {
	return table1Rows(core.DefaultConfig(), workload.Rows)
}

// Table1Cache reruns Table 1 with the file server's unified buffer cache
// sized to cacheSectors (0 = off, the seed's direct-to-driver path).
// The native baseline is never cached: it is the yardstick the paper
// measured against.
func Table1Cache(cacheSectors int) ([]Table1Row, error) {
	cfg := core.DefaultConfig()
	cfg.CacheSectors = cacheSectors
	return table1Rows(cfg, workload.Rows)
}

// CacheSweepPoint is one cache size of experiment E-CACHE: the two
// file-intensive Table 1 ratios with the buffer cache at Sectors.
type CacheSweepPoint struct {
	Sectors  int
	FI1, FI2 float64
}

// CacheSweep measures the file-intensive rows at each cache size — the
// E-CACHE curve showing the WPOS/native ratio moving toward the native
// line as the cache absorbs driver crossings.
func CacheSweep(sizes []int) ([]CacheSweepPoint, error) {
	fiRows := []workload.Row{workload.FileIntensive1, workload.FileIntensive2}
	var out []CacheSweepPoint
	for _, n := range sizes {
		cfg := core.DefaultConfig()
		cfg.CacheSectors = n
		rows, err := table1Rows(cfg, fiRows)
		if err != nil {
			return nil, err
		}
		out = append(out, CacheSweepPoint{Sectors: n, FI1: rows[0].Ratio, FI2: rows[1].Ratio})
	}
	return out, nil
}

func table1Rows(cfg core.Config, rows []workload.Row) ([]Table1Row, error) {
	var out []Table1Row
	for _, row := range rows {
		w, err := core.Boot(cfg)
		if err != nil {
			return nil, err
		}
		n, err := core.BootNative(cpu.Pentium133(), 16, 16384)
		if err != nil {
			return nil, err
		}
		wres, err := workload.Run(row, w.WorkloadEnv())
		if err != nil {
			return nil, fmt.Errorf("wpos %s: %w", row, err)
		}
		nres, err := workload.Run(row, n.WorkloadEnv())
		if err != nil {
			return nil, fmt.Errorf("native %s: %w", row, err)
		}
		out = append(out, Table1Row{
			Row:     row,
			Content: workload.Content(row),
			WPOS:    wres.Cycles,
			Native:  nres.Cycles,
			Ratio:   float64(wres.Cycles) / float64(nres.Cycles),
			Paper:   paperTable1[row],
		})
	}
	return out, nil
}

// Overall returns the geometric-mean-free "Overall" row the paper lists
// (arithmetic mean of ratios, matching its 1.21 given the seven rows).
func Overall(rows []Table1Row) (measured, paper float64) {
	var m, p float64
	for _, r := range rows {
		m += r.Ratio
		p += r.Paper
	}
	return m / float64(len(rows)), p / float64(len(rows))
}

// Table2Result mirrors the paper's Table 2.
type Table2Result struct {
	TrapInstr, RPCInstr   float64
	TrapCycles, RPCCycles float64
	TrapBus, RPCBus       float64
	TrapCPI, RPCCPI       float64
}

// Ratios returns the four ratio cells.
func (t Table2Result) Ratios() (instr, cycles, bus, cpi float64) {
	return t.RPCInstr / t.TrapInstr, t.RPCCycles / t.TrapCycles,
		t.RPCBus / t.TrapBus, t.RPCCPI / t.TrapCPI
}

// PaperTable2 holds the published numbers.
var PaperTable2 = Table2Result{
	TrapInstr: 465, RPCInstr: 1317,
	TrapCycles: 970, RPCCycles: 5163,
	TrapBus: 218, RPCBus: 1849,
	TrapCPI: 2.0, RPCCPI: 3.9,
}

// Table2 measures thread_self against a 32-byte RPC with the performance
// counters of the CPU model.
func Table2() (Table2Result, error) {
	k := mach.New(cpu.Pentium133())
	srv := k.NewTask("server")
	recv, err := srv.AllocatePort()
	if err != nil {
		return Table2Result{}, err
	}
	if _, err := srv.Spawn("loop", func(th *mach.Thread) {
		th.Serve(recv, func(m *mach.Message) *mach.Message { return &mach.Message{Body: m.Body} })
	}); err != nil {
		return Table2Result{}, err
	}
	client := k.NewTask("client")
	sendName, err := client.InsertRight(srv, recv, mach.DispMakeSend)
	if err != nil {
		return Table2Result{}, err
	}
	th, err := client.NewBoundThread("main")
	if err != nil {
		return Table2Result{}, err
	}

	const warm, N = 50, 400
	body := make([]byte, 32)
	for i := 0; i < warm; i++ {
		if _, err := th.Call(sendName, &mach.Message{Body: body}, mach.CallOpts{}); err != nil {
			return Table2Result{}, err
		}
	}
	base := k.CPU.Counters()
	for i := 0; i < N; i++ {
		th.Call(sendName, &mach.Message{Body: body}, mach.CallOpts{})
	}
	rpc := k.CPU.Counters().Sub(base)

	for i := 0; i < warm; i++ {
		th.Self()
	}
	base = k.CPU.Counters()
	for i := 0; i < N; i++ {
		th.Self()
	}
	trap := k.CPU.Counters().Sub(base)

	res := Table2Result{
		TrapInstr:  float64(trap.Instructions) / N,
		RPCInstr:   float64(rpc.Instructions) / N,
		TrapCycles: float64(trap.Cycles) / N,
		RPCCycles:  float64(rpc.Cycles) / N,
		TrapBus:    float64(trap.BusCycles) / N,
		RPCBus:     float64(rpc.BusCycles) / N,
	}
	res.TrapCPI = res.TrapCycles / res.TrapInstr
	res.RPCCPI = res.RPCCycles / res.RPCInstr
	return res, nil
}

// IPCPoint is one size in the rework-improvement sweep (E3).
type IPCPoint struct {
	Size      int
	OldCycles uint64
	NewCycles uint64
	Speedup   float64
}

// IPCSweep measures classic mach_msg round trips against reworked RPC
// across message sizes — the "two to ten times improvement" claim.
func IPCSweep() ([]IPCPoint, error) {
	sizes := []int{0, 32, 256, 1024, 4096, 16384, 65536}
	var out []IPCPoint
	for _, size := range sizes {
		newC, err := rpcCost(size, false)
		if err != nil {
			return nil, err
		}
		oldC, err := rpcCost(size, true)
		if err != nil {
			return nil, err
		}
		out = append(out, IPCPoint{
			Size: size, OldCycles: oldC, NewCycles: newC,
			Speedup: float64(oldC) / float64(newC),
		})
	}
	return out, nil
}

func rpcCost(size int, classic bool) (uint64, error) {
	k := mach.New(cpu.Pentium133())
	srv := k.NewTask("server")
	recv, err := srv.AllocatePort()
	if err != nil {
		return 0, err
	}
	echo := func(m *mach.Message) *mach.Message { return &mach.Message{} }
	if classic {
		srv.Spawn("loop", func(th *mach.Thread) { th.MachServe(recv, echo) })
	} else {
		srv.Spawn("loop", func(th *mach.Thread) { th.Serve(recv, echo) })
	}
	client := k.NewTask("client")
	sendName, err := client.InsertRight(srv, recv, mach.DispMakeSend)
	if err != nil {
		return 0, err
	}
	th, err := client.NewBoundThread("main")
	if err != nil {
		return 0, err
	}
	replyName, err := client.AllocatePort()
	if err != nil {
		return 0, err
	}
	mk := func() *mach.Message {
		if size <= mach.InlineMax {
			return &mach.Message{Body: make([]byte, size)}
		}
		return &mach.Message{OOL: make([]byte, size)}
	}
	call := func() error {
		if classic {
			_, err := th.MachRPC(sendName, mk(), replyName)
			return err
		}
		_, err := th.Call(sendName, mk(), mach.CallOpts{})
		return err
	}
	const warm, N = 30, 150
	for i := 0; i < warm; i++ {
		if err := call(); err != nil {
			return 0, err
		}
	}
	base := k.CPU.Counters()
	for i := 0; i < N; i++ {
		call()
	}
	return k.CPU.Counters().Sub(base).Cycles / N, nil
}

// NSResult compares the X.500-style and simplified name services (E5).
type NSResult struct {
	FullCycles   uint64
	SimpleCycles uint64
	Ratio        float64
}

// NameServices measures a deep personality-path lookup on both services.
func NameServices() (NSResult, error) {
	eng := cpu.NewEngine(cpu.Pentium133())
	layout := cpu.NewLayout(0x400000)
	full := names.NewService(eng, layout)
	simple := names.NewSimpleService(eng, layout)
	if err := full.Bind("/servers/personality/os2/files", names.Binding{}); err != nil {
		return NSResult{}, err
	}
	if err := simple.Bind("os2-files", names.Binding{}); err != nil {
		return NSResult{}, err
	}
	const warm, N = 20, 200
	for i := 0; i < warm; i++ {
		full.Lookup("/servers/personality/os2/files")
		simple.Lookup("os2-files")
	}
	base := eng.Counters()
	for i := 0; i < N; i++ {
		full.Lookup("/servers/personality/os2/files")
	}
	fc := eng.Counters().Sub(base).Cycles / N
	base = eng.Counters()
	for i := 0; i < N; i++ {
		simple.Lookup("os2-files")
	}
	sc := eng.Counters().Sub(base).Cycles / N
	return NSResult{FullCycles: fc, SimpleCycles: sc, Ratio: float64(fc) / float64(sc)}, nil
}

// ObjResult compares fine-grained and coarse object stacks (E6).
type ObjResult struct {
	FineCycles     uint64
	CoarseCycles   uint64
	Ratio          float64
	FineDispatches uint64
	MetadataBytes  uint64
}

// Objects measures one datagram round trip through the networking
// framework in both object modes.
func Objects() (ObjResult, error) {
	cost := func(mode netsvc.Mode) (uint64, *netsvc.Stack, error) {
		eng := cpu.NewEngine(cpu.Pentium133())
		layout := cpu.NewLayout(0xB00000)
		intr := iosys.NewInterruptController(eng, layout, 8)
		na := drivers.NewNIC(eng, intr, 1, "a")
		nb := drivers.NewNIC(eng, intr, 2, "b")
		drivers.Connect(na, nb)
		sa, err := netsvc.NewStack(eng, layout, na, "a", mode)
		if err != nil {
			return 0, nil, err
		}
		sb, err := netsvc.NewStack(eng, layout, nb, "b", mode)
		if err != nil {
			return 0, nil, err
		}
		ep, err := sa.Bind(1)
		if err != nil {
			return 0, nil, err
		}
		if _, err := sb.Bind(2); err != nil {
			return 0, nil, err
		}
		payload := make([]byte, 256)
		const warm, N = 10, 100
		for i := 0; i < warm; i++ {
			ep.SendTo("b", 2, payload)
			sb.Pump()
		}
		base := eng.Counters()
		for i := 0; i < N; i++ {
			ep.SendTo("b", 2, payload)
			sb.Pump()
		}
		return eng.Counters().Sub(base).Cycles / N, sa, nil
	}
	fine, sa, err := cost(netsvc.FineGrained)
	if err != nil {
		return ObjResult{}, err
	}
	coarse, _, err := cost(netsvc.Coarse)
	if err != nil {
		return ObjResult{}, err
	}
	return ObjResult{
		FineCycles: fine, CoarseCycles: coarse,
		Ratio:          float64(fine) / float64(coarse),
		FineDispatches: sa.Hierarchy().Dispatches(),
		MetadataBytes:  sa.Hierarchy().MetadataFootprint(),
	}, nil
}

// MemResult is the two-memory-managers footprint experiment (E7).
type MemResult struct {
	Allocations    int
	RequestedBytes uint64
	ResidentBytes  uint64
	Overhead       float64
	MetadataBytes  uint64
	MapEntries     int
}

// MemFootprint allocates many small eager OS/2 allocations and reports
// the blow-up.
func MemFootprint() (MemResult, error) {
	s, err := core.Boot(core.DefaultConfig())
	if err != nil {
		return MemResult{}, err
	}
	p, err := s.OS2.CreateProcess("footprint")
	if err != nil {
		return MemResult{}, err
	}
	const n = 200
	for i := 0; i < n; i++ {
		if _, e := p.DosAllocMem(100+uint64(i%7)*33, true); e != os2.NoError {
			return MemResult{}, fmt.Errorf("alloc %d: %v", i, e)
		}
	}
	rep := p.Mem.Footprint()
	return MemResult{
		Allocations:    rep.Allocations,
		RequestedBytes: rep.RequestedBytes,
		ResidentBytes:  rep.ResidentBytes,
		Overhead:       rep.Overhead(),
		MetadataBytes:  rep.MetadataBytes,
		MapEntries:     rep.MapEntries,
	}, nil
}

// DriverResult is one driver model's per-operation cost (E9).
type DriverResult struct {
	Model  string
	Cycles uint64
}

// DriverModels runs the same 1-sector write through all three driver
// architectures.
func DriverModels() ([]DriverResult, error) {
	run := func(model core.DriverModel) (DriverResult, error) {
		k := mach.New(cpu.Pentium133())
		layout := k.Layout()
		intr := iosys.NewInterruptController(k.CPU, layout, 32)
		dma := iosys.NewDMAController(k.CPU, layout, 4)
		hrm := iosys.NewHRM(k.CPU, layout)
		disk, err := drivers.NewDisk(k.CPU, dma, intr, 14, 4096)
		if err != nil {
			return DriverResult{}, err
		}
		var d drivers.BlockDriver
		switch model {
		case core.DriverKernel:
			d, err = drivers.NewKernelBlockDriver(k, layout, disk, intr)
		case core.DriverOODDM:
			d, err = drivers.NewOODDMBlockDriver(k, layout, disk, intr)
		default:
			d, err = drivers.NewUserBlockDriver(k, layout, disk, hrm, intr, 1)
		}
		if err != nil {
			return DriverResult{}, err
		}
		app := k.NewTask("app")
		th, err := app.NewBoundThread("main")
		if err != nil {
			return DriverResult{}, err
		}
		buf := make([]byte, drivers.SectorSize)
		const warm, N = 10, 100
		for i := 0; i < warm; i++ {
			if err := d.WriteSectors(th, 0, buf); err != nil {
				return DriverResult{}, err
			}
		}
		base := k.CPU.Counters()
		for i := 0; i < N; i++ {
			d.WriteSectors(th, 0, buf)
		}
		return DriverResult{Model: d.Model(), Cycles: k.CPU.Counters().Sub(base).Cycles / N}, nil
	}
	var out []DriverResult
	for _, m := range []core.DriverModel{core.DriverKernel, core.DriverOODDM, core.DriverUser} {
		r, err := run(m)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MVMResult compares interpreted and translated guest execution (E10).
type MVMResult struct {
	InterpCycles    uint64
	ColdTransCycles uint64
	HotTransCycles  uint64
	Speedup         float64
	CacheHits       uint64
	CacheMisses     uint64
}

// MVMTranslator runs the same guest program under both engines.
func MVMTranslator() (MVMResult, error) {
	k := mach.New(cpu.Pentium133())
	fsrv, err := vfs.NewServer(k, 1)
	if err != nil {
		return MVMResult{}, err
	}
	fsrv.Mount("/", vfs.NewMemFS())
	console := drivers.NewConsole(k.CPU)
	srv := mvm.NewServer(k, fsrv, console)

	a := mvm.NewAsm()
	a.MovImm(mvm.AX, 0).MovImm(mvm.BX, 3000)
	a.Label("loop")
	a.Add(mvm.AX, mvm.BX)
	a.Dec(mvm.BX)
	a.CmpImm(mvm.BX, 0)
	a.Jnz("loop")
	a.Hlt()
	prog, err := a.Assemble()
	if err != nil {
		return MVMResult{}, err
	}

	vi, err := srv.NewVM("i", mvm.Interpret)
	if err != nil {
		return MVMResult{}, err
	}
	vi.Load(prog)
	base := k.CPU.Counters()
	if err := vi.Run(1 << 26); err != nil {
		return MVMResult{}, err
	}
	interp := k.CPU.Counters().Sub(base).Cycles

	vt, err := srv.NewVM("t", mvm.Translate)
	if err != nil {
		return MVMResult{}, err
	}
	vt.Load(prog)
	base = k.CPU.Counters()
	if err := vt.Run(1 << 26); err != nil {
		return MVMResult{}, err
	}
	cold := k.CPU.Counters().Sub(base).Cycles

	vt.Load(prog)
	base = k.CPU.Counters()
	if err := vt.Run(1 << 26); err != nil {
		return MVMResult{}, err
	}
	hot := k.CPU.Counters().Sub(base).Cycles
	hits, misses, _ := vt.TranslatorStats()
	return MVMResult{
		InterpCycles: interp, ColdTransCycles: cold, HotTransCycles: hot,
		Speedup:   float64(interp) / float64(hot),
		CacheHits: hits, CacheMisses: misses,
	}, nil
}

// FSResult is one physical format's behaviour under the union layer (E8).
type FSResult struct {
	FS            string
	LongNameOK    bool
	EAOK          bool
	CaseSensitive bool
}

// FSPersonality probes each format through the dispatcher.
func FSPersonality() ([]FSResult, error) {
	build := func(name string) (vfs.FileSystem, error) {
		switch name {
		case "fat":
			dev := vfs.NewRAMDisk(4096)
			if err := fat.Format(dev); err != nil {
				return nil, err
			}
			return fat.Mount(dev)
		case "hpfs":
			dev := vfs.NewRAMDisk(4096)
			if err := hpfs.Format(dev); err != nil {
				return nil, err
			}
			return hpfs.Mount(dev)
		default:
			dev := vfs.NewRAMDisk(8192)
			if err := jfs.Format(dev); err != nil {
				return nil, err
			}
			return jfs.Mount(dev)
		}
	}
	var out []FSResult
	for _, name := range []string{"fat", "hpfs", "jfs"} {
		fsys, err := build(name)
		if err != nil {
			return nil, err
		}
		d := vfs.NewDispatcher()
		if err := d.Mount("/", fsys); err != nil {
			return nil, err
		}
		r := FSResult{FS: name, CaseSensitive: fsys.Caps().CaseSensitive}
		_, lerr := d.Open(vfs.ProfileTalOS, "/A Long Descriptive Name.doc", true, true)
		r.LongNameOK = lerr == nil
		if fd, err := d.Open(vfs.ProfileOS2, "/E.DAT", true, true); err == nil {
			d.WriteAt(fd, make([]byte, 512), 0)
			d.Close(fd)
		}
		r.EAOK = d.SetEA(vfs.ProfileOS2, "/E.DAT", ".TYPE", "text") == nil
		out = append(out, r)
	}
	return out, nil
}

// TrapVsRPCNote summarizes why CPI differs, from the counter detail.
func TrapVsRPCNote(t Table2Result) string {
	return fmt.Sprintf(
		"RPC executes %.1fx the instructions but %.1fx the cycles: the round trip's code footprint misses the I-cache and the two address-space switches flush the TLB, so the processor stalls (CPI %.1f vs %.1f).",
		t.RPCInstr/t.TrapInstr, t.RPCCycles/t.TrapCycles, t.RPCCPI, t.TrapCPI)
}
