package bench

import (
	"math"
	"testing"

	"repro/internal/cpu"
)

// TestEPROFExactness is the E-PROF gate: the per-region cycle ledger of
// one profiled 32-byte RPC and one thread_self trap sums to the direct
// counter measurements cycle-for-cycle, and the single profiled op agrees
// with the Table 2 N-averaged reproduction to within the fractional-CPI
// rounding slack.
func TestEPROFExactness(t *testing.T) {
	res, err := EPROF()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []OpProfile{res.RPC, res.Trap} {
		if !op.Exact {
			c, b, i := op.Profile.Totals()
			t.Errorf("%s: profile totals (%d cyc, %d bus, %d instr) != counters (%d, %d, %d)",
				op.Name, c, b, i, op.Counters.Cycles, op.Counters.BusCycles, op.Counters.Instructions)
		}
		// Per-kind ledger must also sum to the total: every cycle has
		// exactly one stall kind.
		var sum uint64
		for kind := cpu.ProfKind(0); kind < cpu.NumProfKinds; kind++ {
			sum += op.ByKind[kind]
		}
		if sum != op.Counters.Cycles {
			t.Errorf("%s: kind ledger sums to %d, counters say %d", op.Name, sum, op.Counters.Cycles)
		}
	}

	// The single profiled op must agree with the N-averaged Table 2
	// reproduction: same rig, same steady state.  The only legal slack is
	// the base-CPI fractional carry (±1 cycle on a single op) and the
	// float rounding of the average.
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(float64(res.RPC.Counters.Cycles) - t2.RPCCycles); diff > 2 {
		t.Errorf("single profiled RPC = %d cycles, Table 2 average = %.2f (diff %.2f > 2)",
			res.RPC.Counters.Cycles, t2.RPCCycles, diff)
	}
	if diff := math.Abs(float64(res.Trap.Counters.Cycles) - t2.TrapCycles); diff > 2 {
		t.Errorf("single profiled trap = %d cycles, Table 2 average = %.2f (diff %.2f > 2)",
			res.Trap.Counters.Cycles, t2.TrapCycles, diff)
	}
}

// TestEPROFIMissLargest gates the paper's attribution: of the RPC-minus-
// trap cycle gap, the I-cache refill share is the single largest stall
// component.
func TestEPROFIMissLargest(t *testing.T) {
	res, err := EPROF()
	if err != nil {
		t.Fatal(err)
	}
	if res.GapCycles <= 0 {
		t.Fatalf("RPC-trap gap = %d cycles, want positive", res.GapCycles)
	}
	if res.Largest != cpu.ProfIMiss {
		t.Errorf("largest gap component = %s (%.1f%%), paper says I-cache misses",
			res.Largest, 100*res.LargestShare)
		for kind := cpu.ProfKind(0); kind < cpu.NumProfKinds; kind++ {
			t.Logf("  %-6s %+d cycles", kind, res.GapByKind[kind])
		}
	}
	if res.IMissShare <= 0 {
		t.Errorf("imiss share of the gap = %.3f, want positive", res.IMissShare)
	}
}

// TestEPROFContext checks the profiled RPC's cycles actually carry the
// mach-pushed context.  Under the serial client-blocks-on-RPC discipline
// the frames form a true call tree: the server's serve/op frames nest
// inside the client's rpc:server dispatch frame, so every cycle of the
// call lands under rpc:server and the reply-delivery cycles land under
// the nested serve:server frame.
func TestEPROFContext(t *testing.T) {
	res, err := EPROF()
	if err != nil {
		t.Fatal(err)
	}
	var underRPC, underServe uint64
	for _, s := range res.RPC.Profile.Samples {
		if len(s.Stack) > 0 && s.Stack[0] == "rpc:server" {
			underRPC += s.Cycles
		}
		for _, f := range s.Stack {
			if f == "serve:server" {
				underServe += s.Cycles
				break
			}
		}
	}
	if underRPC == 0 {
		t.Error("no cycles attributed under the rpc:server dispatch frame")
	}
	if underServe == 0 {
		t.Error("no cycles attributed under the nested serve:server frame")
	}
	if underServe >= underRPC {
		t.Errorf("serve frame (%d cycles) should be a strict subset of the rpc frame (%d)",
			underServe, underRPC)
	}
}
