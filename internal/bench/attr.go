package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ktrace"
	"repro/internal/workload"
)

// AttributionResult is experiment E-ATTR: a traced run of one Table 1 row
// on Workplace OS, broken down into per-subsystem exclusive cycle costs,
// against the untraced WPOS and native cycle counts.  The boundary-crossing
// subsystems (RPC machinery, classic IPC, interrupt reflection, the driver
// stack) must explain the bulk of the WPOS-vs-native gap — the paper's
// explanation for the File Intensive rows' ~3x ratio, now measured rather
// than asserted.
type AttributionResult struct {
	Row workload.Row
	// WPOSCycles/NativeCycles are untraced runs (the Table 1 cells).
	WPOSCycles   uint64
	NativeCycles uint64
	// TracedCycles is the traced WPOS run; tracing is observation-only, so
	// it must equal WPOSCycles exactly.
	TracedCycles uint64
	// Gap is WPOSCycles - NativeCycles: the multi-server premium.
	Gap uint64
	// Subsystems is the exclusive-cost attribution of the traced run.
	Subsystems []ktrace.SubsystemCost
	// CrossingCycles sums the exclusive cycles of the boundary-crossing
	// subsystems; CrossingShare is its fraction of Gap.
	CrossingCycles uint64
	CrossingShare  float64
	// Dropped counts ring-wrap losses in the traced run (0 when the ring
	// was large enough for the whole workload).
	Dropped uint64
}

// crossingSubsystems classifies which attribution buckets are
// boundary-crossing machinery rather than useful work: the reworked RPC
// path (client stubs, physical copies, address-space switches, server
// loop), classic mach_msg where used, interrupt dispatch/reflection, and
// the driver stack that the native system runs in-kernel for a fraction of
// the cost.
var crossingSubsystems = map[string]bool{
	"mach.rpc": true,
	"mach.ipc": true,
	"iosys":    true,
	"drivers":  true,
}

// attrRingSize holds a full File Intensive trace without wrapping.
const attrRingSize = 1 << 18

// Attribution runs E-ATTR for one row (the experiment's canonical row is
// File Intensive 1).
func Attribution(row workload.Row) (AttributionResult, error) {
	// Native baseline (16 MB monolithic, as in Table 1).
	n, err := core.BootNative(cpu.Pentium133(), 16, 16384)
	if err != nil {
		return AttributionResult{}, err
	}
	nres, err := workload.Run(row, n.WorkloadEnv())
	if err != nil {
		return AttributionResult{}, fmt.Errorf("native %s: %w", row, err)
	}

	// Untraced WPOS run: the Table 1 cell.
	w, err := core.Boot(core.DefaultConfig())
	if err != nil {
		return AttributionResult{}, err
	}
	wres, err := workload.Run(row, w.WorkloadEnv())
	if err != nil {
		return AttributionResult{}, fmt.Errorf("wpos %s: %w", row, err)
	}

	// Traced WPOS run on a fresh boot: attach after boot so the trace
	// holds only the workload, reset nothing mid-run.
	wt, err := core.Boot(core.DefaultConfig())
	if err != nil {
		return AttributionResult{}, err
	}
	tr := ktrace.AttachSized(wt.Kernel.CPU, attrRingSize)
	defer ktrace.Detach(wt.Kernel.CPU)
	tres, err := workload.Run(row, wt.WorkloadEnv())
	if err != nil {
		return AttributionResult{}, fmt.Errorf("traced wpos %s: %w", row, err)
	}

	res := AttributionResult{
		Row:          row,
		WPOSCycles:   wres.Cycles,
		NativeCycles: nres.Cycles,
		TracedCycles: tres.Cycles,
		Subsystems:   ktrace.Attribute(tr.Events()),
		Dropped:      tr.Dropped(),
	}
	if res.WPOSCycles > res.NativeCycles {
		res.Gap = res.WPOSCycles - res.NativeCycles
	}
	for _, s := range res.Subsystems {
		if crossingSubsystems[s.Subsystem] {
			res.CrossingCycles += s.Cycles
		}
	}
	if res.Gap > 0 {
		res.CrossingShare = float64(res.CrossingCycles) / float64(res.Gap)
	}
	return res, nil
}
