package bench

import (
	"repro/internal/core"
	"repro/internal/kstat"
	"repro/internal/workload"
)

// WorkloadStats is the kstat appendix for one Table 1 workload: the
// metric deltas the fabric recorded while the workload ran on WPOS.
type WorkloadStats struct {
	Row    string         `json:"row"`
	Cycles uint64         `json:"cycles"`
	Stats  kstat.Snapshot `json:"stats"`
}

// Table1Stats reruns the Table 1 workloads on a freshly booted WPOS and
// captures each one's kstat delta — what crossed the RPC path, which
// servers were called, what the file server and pager did — alongside the
// cycle total the table reports.
func Table1Stats() ([]WorkloadStats, error) {
	var out []WorkloadStats
	for _, row := range workload.Rows {
		s, err := core.Boot(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		mark := s.Stats.Snapshot()
		res, err := workload.Run(row, s.WorkloadEnv())
		if err != nil {
			return nil, err
		}
		out = append(out, WorkloadStats{
			Row:    string(row),
			Cycles: res.Cycles,
			Stats:  s.Stats.Snapshot().Delta(mark),
		})
	}
	return out, nil
}
