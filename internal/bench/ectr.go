package bench

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/kstat"
	"repro/internal/mach"
)

// Experiment E-CTR: derive Table 2's trap-versus-RPC comparison purely
// from the kstat fabric during a normal run, and prove at the same time
// that the fabric is observation-only — the direct measurement taken with
// kstat attached must be byte-identical to one taken without it.

// CounterTable2Result pairs the direct counter-bracketed measurement with
// the one reconstructed from kstat family deltas over the same run.
type CounterTable2Result struct {
	// Direct is Table 2 measured the classic way (engine counter deltas
	// around the loops), with the kstat fabric attached and recording.
	Direct Table2Result
	// FromKstat is the same table rebuilt only from kstat counters:
	// per-operation averages of the mach.trap.* and mach.rpc.* families.
	FromKstat Table2Result
	// TrapOps and RPCOps are the operation counts the fabric saw inside
	// the measured windows; both must equal the loop length exactly.
	TrapOps, RPCOps uint64
}

// CounterTable2 reruns the Table 2 rig with the metrics fabric attached.
func CounterTable2() (CounterTable2Result, error) {
	k := mach.New(cpu.Pentium133())
	st := kstat.Attach(k.CPU)
	defer kstat.Detach(k.CPU)
	srv := k.NewTask("server")
	recv, err := srv.AllocatePort()
	if err != nil {
		return CounterTable2Result{}, err
	}
	if _, err := srv.Spawn("loop", func(th *mach.Thread) {
		th.Serve(recv, func(m *mach.Message) *mach.Message { return &mach.Message{Body: m.Body} })
	}); err != nil {
		return CounterTable2Result{}, err
	}
	client := k.NewTask("client")
	sendName, err := client.InsertRight(srv, recv, mach.DispMakeSend)
	if err != nil {
		return CounterTable2Result{}, err
	}
	th, err := client.NewBoundThread("main")
	if err != nil {
		return CounterTable2Result{}, err
	}

	const warm, N = 50, 400
	body := make([]byte, 32)
	for i := 0; i < warm; i++ {
		if _, err := th.Call(sendName, &mach.Message{Body: body}, mach.CallOpts{}); err != nil {
			return CounterTable2Result{}, err
		}
	}
	markRPC := st.Snapshot()
	base := k.CPU.Counters()
	for i := 0; i < N; i++ {
		th.Call(sendName, &mach.Message{Body: body}, mach.CallOpts{})
	}
	rpc := k.CPU.Counters().Sub(base)
	rpcDelta := st.Snapshot().Delta(markRPC)

	for i := 0; i < warm; i++ {
		th.Self()
	}
	markTrap := st.Snapshot()
	base = k.CPU.Counters()
	for i := 0; i < N; i++ {
		th.Self()
	}
	trap := k.CPU.Counters().Sub(base)
	trapDelta := st.Snapshot().Delta(markTrap)

	res := CounterTable2Result{
		Direct: Table2Result{
			TrapInstr:  float64(trap.Instructions) / N,
			RPCInstr:   float64(rpc.Instructions) / N,
			TrapCycles: float64(trap.Cycles) / N,
			RPCCycles:  float64(rpc.Cycles) / N,
			TrapBus:    float64(trap.BusCycles) / N,
			RPCBus:     float64(rpc.BusCycles) / N,
		},
		TrapOps: trapDelta.Counters["mach.trap.count"],
		RPCOps:  rpcDelta.Counters["mach.rpc.calls"],
	}
	res.Direct.TrapCPI = res.Direct.TrapCycles / res.Direct.TrapInstr
	res.Direct.RPCCPI = res.Direct.RPCCycles / res.Direct.RPCInstr
	if res.TrapOps == 0 || res.RPCOps == 0 {
		return res, fmt.Errorf("bench: kstat saw no operations (trap=%d rpc=%d)", res.TrapOps, res.RPCOps)
	}
	res.FromKstat = Table2Result{
		TrapInstr:  float64(trapDelta.Counters["mach.trap.instr"]) / float64(res.TrapOps),
		RPCInstr:   float64(rpcDelta.Counters["mach.rpc.instr"]) / float64(res.RPCOps),
		TrapCycles: float64(trapDelta.Counters["mach.trap.cycles"]) / float64(res.TrapOps),
		RPCCycles:  float64(rpcDelta.Counters["mach.rpc.cycles"]) / float64(res.RPCOps),
		TrapBus:    float64(trapDelta.Counters["mach.trap.bus"]) / float64(res.TrapOps),
		RPCBus:     float64(rpcDelta.Counters["mach.rpc.bus"]) / float64(res.RPCOps),
	}
	res.FromKstat.TrapCPI = res.FromKstat.TrapCycles / res.FromKstat.TrapInstr
	res.FromKstat.RPCCPI = res.FromKstat.RPCCycles / res.FromKstat.RPCInstr
	return res, nil
}
