package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/klat"
	"repro/internal/workload"
)

// checkLedger walks one exemplar hop tree asserting the exactness
// invariants the ledger is built on: segments telescope to the hop's
// end-to-end cycles, a hop's service window is its own cycles plus its
// children's windows, and nothing is estimated or sampled.
func checkLedger(t *testing.T, h *klat.HopDump) {
	t.Helper()
	if h.Sub {
		if h.E2E != h.Service {
			t.Errorf("sub hop %s %#x: e2e %d != service %d", h.Server, h.Op, h.E2E, h.Service)
		}
	} else if got := h.Send + h.Queue + h.Service + h.Resume; got != h.E2E {
		t.Errorf("hop %s %#x: segments sum %d != e2e %d", h.Server, h.Op, got, h.E2E)
	}
	var childSum uint64
	for i := range h.Children {
		childSum += h.Children[i].E2E
		checkLedger(t, &h.Children[i])
	}
	if h.Own+childSum != h.Service {
		t.Errorf("hop %s %#x: own %d + children %d != service %d", h.Server, h.Op, h.Own, childSum, h.Service)
	}
}

// TestETailAttribution is the E-TAIL gate: under eight clients, a
// 4-thread server pool and a deliberately undersized buffer cache, the
// ledgers must hold their exact-sum invariants, every family's p99 must
// sit at or above its p50, and the slowest request's modeled-schedule
// decomposition must name queueing behind the single block-driver arm
// as the dominant group.
func TestETailAttribution(t *testing.T) {
	res, err := ETail()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())

	if res.Requests == 0 {
		t.Fatal("no file-server requests recorded")
	}
	for _, f := range res.Dump.Families {
		if f.E2E.Count == 0 {
			continue
		}
		if p50, p99 := f.E2E.Quantile(0.50), f.E2E.Quantile(0.99); p99 < p50 {
			t.Errorf("family %s %#x: p99 %d < p50 %d", f.Server, f.Op, p99, p50)
		}
		for i := range f.Exemplars {
			ex := &f.Exemplars[i]
			checkLedger(t, ex)
			// The component rollup partitions the root's measured
			// end-to-end cycles exactly — no sampling error by
			// construction.
			var sum uint64
			for _, v := range ex.Components() {
				sum += v
			}
			if sum != ex.E2E {
				t.Errorf("exemplar %s %#x: component sum %d != e2e %d", f.Server, f.Op, sum, ex.E2E)
			}
		}
	}

	if res.P99 < res.P50 {
		t.Errorf("merged file-server p99 %d < p50 %d", res.P99, res.P50)
	}
	if res.Dominant != groupDriverQueue {
		t.Errorf("slowest exemplar's dominant group = %q, want %q\nbreakdown: %+v",
			res.Dominant, groupDriverQueue, res.Breakdown)
	}
	if res.DriverWait == 0 {
		t.Error("no driver-arm wait attributed in the slowest exemplar")
	}
}

// TestTailWorkloadObservationOnly: the latency ledger is observation
// only.  The same FI1 workload on two identically configured boots —
// one with the tracker detached — must model bit-identical cycles; the
// attached side must still have recorded multi-hop ledgers.
func TestTailWorkloadObservationOnly(t *testing.T) {
	a, err := core.Boot(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Boot(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	klat.Detach(b.Kernel.CPU)

	ra, err := workload.Run(workload.FileIntensive1, a.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := workload.Run(workload.FileIntensive1, b.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cycles != rb.Cycles {
		t.Errorf("ledger perturbed the model: attached %d cycles, detached %d", ra.Cycles, rb.Cycles)
	}

	lt := klat.For(a.Kernel.CPU)
	if lt == nil {
		t.Fatal("tracker not attached on default boot")
	}
	d := lt.Dump()
	var exemplars, multiHop int
	for _, f := range d.Families {
		exemplars += len(f.Exemplars)
		for i := range f.Exemplars {
			if len(f.Exemplars[i].Children) > 0 {
				multiHop++
			}
		}
	}
	if exemplars == 0 {
		t.Error("attached boot retained no exemplars")
	}
	if multiHop == 0 {
		t.Error("no multi-hop ledger retained (file ops should chain through the driver)")
	}
}
