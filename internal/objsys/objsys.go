// Package objsys simulates the Taligent-style C++ object system whose
// cost the paper evaluates: complex class hierarchies with extensive
// subclassing, a very large number of very short virtual methods, frozen
// class structure, per-class metadata (vtables, RTTI) and stateful
// wrapper classes over kernel interfaces.
//
// Each class's method bodies are code regions placed independently, so a
// deep hierarchy's dispatch chain scatters across the I-cache exactly the
// way the paper complains about; virtual dispatch charges a vtable load
// and an indirect branch.  The MK++-style alternative — few virtuals,
// aggressive inlining, coarse objects — is modeled by Freeze, which
// collapses a dispatch chain into a single straight-line region.
package objsys

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cpu"
)

// Errors returned by the object system.
var (
	ErrNoClass      = errors.New("objsys: no such class")
	ErrDupClass     = errors.New("objsys: class already defined")
	ErrNoMethod     = errors.New("objsys: method not found in hierarchy")
	ErrFrozen       = errors.New("objsys: hierarchy frozen; class structure is fixed in library code")
	ErrNotFlattened = errors.New("objsys: chain not flattened")
)

// DispatchCycles is the pipeline cost of one virtual call: vtable load,
// indirect branch and the likely misprediction on a 90s in-order core.
const DispatchCycles = 9

// Method is one virtual method: an instruction count realized as a
// private code region of its defining class.
type Method struct {
	Name   string
	region cpu.Region
}

// Class is a node in the hierarchy.
type Class struct {
	Name    string
	Parent  *Class
	Depth   int
	methods map[string]*Method
	// vtableAddr is where this class's vtable lives, for D-cache
	// accounting on dispatch.
	vtableAddr uint64
	// MetadataBytes models vtable + RTTI + runtime bookkeeping.
	MetadataBytes uint64
}

// Object is an instance.
type Object struct {
	Class *Class
	// State is the instance data; stateful wrappers grow it.
	State map[string]uint64
}

// Hierarchy owns a set of classes charging to one engine.
type Hierarchy struct {
	eng    *cpu.Engine
	layout *cpu.Layout

	mu      sync.Mutex
	classes map[string]*Class
	frozen  bool
	vtNext  uint64

	dispatches uint64
	flattened  map[string]cpu.Region
}

// NewHierarchy creates an empty hierarchy.
func NewHierarchy(eng *cpu.Engine, layout *cpu.Layout) *Hierarchy {
	return &Hierarchy{
		eng:       eng,
		layout:    layout,
		classes:   make(map[string]*Class),
		vtNext:    0x5000_0000,
		flattened: make(map[string]cpu.Region),
	}
}

// DefineClass adds a class.  methods maps method name to body instruction
// count; each body gets its own code region.  parent may be "" for a
// root.  Fails once the hierarchy is frozen — C++ "effectively froze the
// class structure in library code with the initial version".
func (h *Hierarchy) DefineClass(name, parent string, methods map[string]uint64) (*Class, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.frozen {
		return nil, ErrFrozen
	}
	if _, ok := h.classes[name]; ok {
		return nil, ErrDupClass
	}
	var p *Class
	if parent != "" {
		var ok bool
		p, ok = h.classes[parent]
		if !ok {
			return nil, ErrNoClass
		}
	}
	c := &Class{Name: name, Parent: p, methods: make(map[string]*Method), vtableAddr: h.vtNext}
	h.vtNext += 256
	if p != nil {
		c.Depth = p.Depth + 1
	}
	var text uint64
	for mname, instr := range methods {
		r := h.layout.PlaceInstr("objsys:"+name+"::"+mname, instr)
		c.methods[mname] = &Method{Name: mname, region: r}
		text += r.Size
	}
	// vtable entries + RTTI + ctor/dtor glue.
	c.MetadataBytes = 64 + 16*uint64(len(methods)) + 32*uint64(c.Depth+1)
	h.classes[name] = c
	return c, nil
}

// Freeze fixes the class structure (shipping the library).
func (h *Hierarchy) Freeze() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.frozen = true
}

// New instantiates a class.
func (h *Hierarchy) New(className string) (*Object, error) {
	h.mu.Lock()
	c, ok := h.classes[className]
	h.mu.Unlock()
	if !ok {
		return nil, ErrNoClass
	}
	// Construction runs every constructor up the chain: one dispatch
	// and a little work per ancestor.
	for cl := c; cl != nil; cl = cl.Parent {
		h.chargeDispatch(cl)
		h.eng.Instr(12)
	}
	return &Object{Class: c, State: make(map[string]uint64)}, nil
}

// Invoke performs one virtual call: vtable dispatch, then the most
// derived override found walking up the chain.
func (h *Hierarchy) Invoke(o *Object, method string) error {
	for c := o.Class; c != nil; c = c.Parent {
		if m, ok := c.methods[method]; ok {
			h.chargeDispatch(o.Class)
			h.eng.Exec(m.region)
			return nil
		}
	}
	return ErrNoMethod
}

// InvokeChain runs a sequence of virtual calls — the fine-grained style
// where an operation is decomposed into many short methods.
func (h *Hierarchy) InvokeChain(o *Object, methods []string) error {
	for _, m := range methods {
		if err := h.Invoke(o, m); err != nil {
			return err
		}
	}
	return nil
}

func (h *Hierarchy) chargeDispatch(c *Class) {
	h.mu.Lock()
	h.dispatches++
	h.mu.Unlock()
	h.eng.Read(c.vtableAddr, 8) // vtable slot load
	h.eng.Stall(DispatchCycles)
	h.eng.Instr(3) // load-load-call
}

// Flatten pre-compiles a chain of methods on a class into one contiguous
// region — the MK++ approach of restricting virtuals and inlining
// aggressively.  The flattened body has the same total instruction count
// but a single footprint and no dispatches.
func (h *Hierarchy) Flatten(className string, chainName string, methods []string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.classes[className]
	if !ok {
		return ErrNoClass
	}
	var total uint64
	for _, mname := range methods {
		found := false
		for cl := c; cl != nil; cl = cl.Parent {
			if m, ok := cl.methods[mname]; ok {
				total += m.region.Instr
				found = true
				break
			}
		}
		if !found {
			return ErrNoMethod
		}
	}
	// Inlining also eliminates call/prologue overhead: ~4 instructions
	// per inlined call site.
	saved := uint64(4 * len(methods))
	if total > saved {
		total -= saved
	}
	h.flattened[className+"#"+chainName] = h.layout.PlaceInstr("objsys:flat:"+className+"#"+chainName, total)
	return nil
}

// InvokeFlat runs a flattened chain: one direct call, one region.
func (h *Hierarchy) InvokeFlat(o *Object, chainName string) error {
	h.mu.Lock()
	r, ok := h.flattened[o.Class.Name+"#"+chainName]
	h.mu.Unlock()
	if !ok {
		return ErrNotFlattened
	}
	h.eng.Instr(2) // direct call
	h.eng.Exec(r)
	return nil
}

// Dispatches reports the virtual calls made so far.
func (h *Hierarchy) Dispatches() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dispatches
}

// MetadataFootprint totals the per-class runtime metadata — the "C++
// runtimes in the kernel and user space consumed considerable amounts of
// memory" claim, measurable.
func (h *Hierarchy) MetadataFootprint() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var total uint64
	for _, c := range h.classes {
		total += c.MetadataBytes
	}
	return total
}

// Classes reports the number of defined classes.
func (h *Hierarchy) Classes() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.classes)
}

// Wrapper is a stateful C++ wrapper over a kernel interface: rather than
// a stateless veneer it exports a different interface and keeps state,
// which the paper singles out as a size and complexity problem.  Every
// call updates the wrapper state (extra instructions and data traffic)
// before reaching the wrapped operation.
type Wrapper struct {
	h         *Hierarchy
	obj       *Object
	stateAddr uint64
	stateSize uint64
	calls     uint64
}

// NewWrapper wraps an object with nBytes of wrapper state.
func (h *Hierarchy) NewWrapper(o *Object, nBytes uint64) *Wrapper {
	h.mu.Lock()
	addr := h.vtNext
	h.vtNext += (nBytes + 255) &^ 255
	h.mu.Unlock()
	return &Wrapper{h: h, obj: o, stateAddr: addr, stateSize: nBytes}
}

// Call invokes a method through the wrapper: state bookkeeping first,
// then the virtual call.
func (w *Wrapper) Call(method string) error {
	w.calls++
	w.h.eng.Read(w.stateAddr, w.stateSize)
	w.h.eng.Write(w.stateAddr, w.stateSize/2+1)
	w.h.eng.Instr(25 + w.stateSize/16)
	return w.h.Invoke(w.obj, method)
}

// StateBytes reports the wrapper's maintained state size.
func (w *Wrapper) StateBytes() uint64 { return w.stateSize }

func (c *Class) String() string {
	return fmt.Sprintf("class %s depth=%d methods=%d", c.Name, c.Depth, len(c.methods))
}
