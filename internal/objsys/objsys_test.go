package objsys

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
)

func newH() (*Hierarchy, *cpu.Engine) {
	eng := cpu.NewEngine(cpu.Pentium133())
	return NewHierarchy(eng, cpu.NewLayout(0x900000)), eng
}

func TestDefineAndInvoke(t *testing.T) {
	h, eng := newH()
	if _, err := h.DefineClass("TBase", "", map[string]uint64{"Open": 40, "Close": 30}); err != nil {
		t.Fatalf("DefineClass: %v", err)
	}
	o, err := h.New("TBase")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	base := eng.Counters()
	if err := h.Invoke(o, "Open"); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	d := eng.Counters().Sub(base)
	if d.Instructions < 40 {
		t.Fatalf("method body not charged: %d instr", d.Instructions)
	}
	if h.Dispatches() == 0 {
		t.Fatal("no dispatch counted")
	}
	if err := h.Invoke(o, "Missing"); err != ErrNoMethod {
		t.Fatalf("missing method err = %v", err)
	}
}

func TestInheritanceAndOverride(t *testing.T) {
	h, _ := newH()
	h.DefineClass("TDevice", "", map[string]uint64{"Probe": 50, "Reset": 20})
	h.DefineClass("TDisk", "TDevice", map[string]uint64{"Probe": 80})
	h.DefineClass("TSCSIDisk", "TDisk", nil)
	o, _ := h.New("TSCSIDisk")
	if o.Class.Depth != 2 {
		t.Fatalf("depth = %d", o.Class.Depth)
	}
	// Probe resolves to TDisk's override; Reset walks to the root.
	if err := h.Invoke(o, "Probe"); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if err := h.Invoke(o, "Reset"); err != nil {
		t.Fatalf("Reset: %v", err)
	}
}

func TestDefineErrors(t *testing.T) {
	h, _ := newH()
	h.DefineClass("A", "", nil)
	if _, err := h.DefineClass("A", "", nil); err != ErrDupClass {
		t.Fatalf("dup err = %v", err)
	}
	if _, err := h.DefineClass("B", "Missing", nil); err != ErrNoClass {
		t.Fatalf("parent err = %v", err)
	}
	if _, err := h.New("Missing"); err != ErrNoClass {
		t.Fatalf("new err = %v", err)
	}
}

func TestFreezeBlocksNewClasses(t *testing.T) {
	h, _ := newH()
	h.DefineClass("A", "", nil)
	h.Freeze()
	if _, err := h.DefineClass("B", "A", nil); err != ErrFrozen {
		t.Fatalf("err = %v, want ErrFrozen", err)
	}
}

// TestFineGrainedVsFlattened is experiment E6's core assertion: a chain
// of many short virtual methods costs more cycles than the same work
// flattened MK++-style into one region, despite equal instruction counts
// (modulo inlined call overhead).
func TestFineGrainedVsFlattened(t *testing.T) {
	h, eng := newH()
	// A Taligent-flavored stack: 12 classes, short methods.
	parent := ""
	var chain []string
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("TLayer%d", i)
		m := fmt.Sprintf("Step%d", i)
		if _, err := h.DefineClass(name, parent, map[string]uint64{m: 35}); err != nil {
			t.Fatalf("DefineClass: %v", err)
		}
		parent = name
		chain = append(chain, m)
	}
	leaf := "TLayer11"
	if err := h.Flatten(leaf, "op", chain); err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	o, _ := h.New(leaf)

	// Warm both paths.
	h.InvokeChain(o, chain)
	h.InvokeFlat(o, "op")

	const N = 100
	base := eng.Counters()
	for i := 0; i < N; i++ {
		if err := h.InvokeChain(o, chain); err != nil {
			t.Fatal(err)
		}
	}
	fine := eng.Counters().Sub(base)

	base = eng.Counters()
	for i := 0; i < N; i++ {
		if err := h.InvokeFlat(o, "op"); err != nil {
			t.Fatal(err)
		}
	}
	flat := eng.Counters().Sub(base)

	t.Logf("fine-grained: %d cycles/op (%d instr); flattened: %d cycles/op (%d instr); ratio %.2f",
		fine.Cycles/N, fine.Instructions/N, flat.Cycles/N, flat.Instructions/N,
		float64(fine.Cycles)/float64(flat.Cycles))
	if fine.Cycles <= flat.Cycles*12/10 {
		t.Fatalf("fine-grained should cost at least 1.2x: %d vs %d", fine.Cycles, flat.Cycles)
	}
}

func TestInvokeFlatRequiresFlatten(t *testing.T) {
	h, _ := newH()
	h.DefineClass("A", "", map[string]uint64{"m": 10})
	o, _ := h.New("A")
	if err := h.InvokeFlat(o, "nope"); err != ErrNotFlattened {
		t.Fatalf("err = %v", err)
	}
	if err := h.Flatten("Missing", "x", nil); err != ErrNoClass {
		t.Fatalf("flatten class err = %v", err)
	}
	if err := h.Flatten("A", "x", []string{"missing"}); err != ErrNoMethod {
		t.Fatalf("flatten method err = %v", err)
	}
}

func TestMetadataFootprintGrowsWithHierarchy(t *testing.T) {
	h, _ := newH()
	h.DefineClass("A", "", map[string]uint64{"a": 10, "b": 10})
	small := h.MetadataFootprint()
	parent := "A"
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("C%d", i)
		h.DefineClass(name, parent, map[string]uint64{"m": 10})
		parent = name
	}
	big := h.MetadataFootprint()
	if big <= small*5 {
		t.Fatalf("deep hierarchy metadata should balloon: %d -> %d", small, big)
	}
	if h.Classes() != 21 {
		t.Fatalf("classes = %d", h.Classes())
	}
}

func TestWrapperStateCost(t *testing.T) {
	h, eng := newH()
	h.DefineClass("TPortWrapper", "", map[string]uint64{"Send": 30})
	o, _ := h.New("TPortWrapper")
	w := h.NewWrapper(o, 512)
	if w.StateBytes() != 512 {
		t.Fatalf("state = %d", w.StateBytes())
	}
	// Warm.
	w.Call("Send")
	h.Invoke(o, "Send")
	const N = 50
	base := eng.Counters()
	for i := 0; i < N; i++ {
		w.Call("Send")
	}
	wrapped := eng.Counters().Sub(base).Cycles
	base = eng.Counters()
	for i := 0; i < N; i++ {
		h.Invoke(o, "Send")
	}
	direct := eng.Counters().Sub(base).Cycles
	t.Logf("wrapped %d cycles/call vs direct %d", wrapped/N, direct/N)
	if wrapped <= direct {
		t.Fatal("stateful wrapper must cost more than the direct call")
	}
}

// Property: dispatch count equals the number of Invoke calls plus
// construction dispatches, for any sequence.
func TestPropertyDispatchAccounting(t *testing.T) {
	f := func(n uint8) bool {
		h, _ := newH()
		h.DefineClass("A", "", map[string]uint64{"m": 5})
		o, err := h.New("A") // 1 ctor dispatch
		if err != nil {
			return false
		}
		start := h.Dispatches()
		count := int(n % 50)
		for i := 0; i < count; i++ {
			if err := h.Invoke(o, "m"); err != nil {
				return false
			}
		}
		return h.Dispatches()-start == uint64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
