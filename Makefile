GO ?= go

.PHONY: all build test check tables

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 gate: vet + race detector on the concurrency-heavy packages.
check:
	sh scripts/check.sh

tables:
	$(GO) run ./cmd/benchtables
