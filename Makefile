GO ?= go

.PHONY: all build test check tables stats profile benchgate smp chaos blackbox tail

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 gate: vet + race detector on the concurrency-heavy packages.
check:
	sh scripts/check.sh

tables:
	$(GO) run ./cmd/benchtables

# Smoke test the observability plane: boot wpos, run a workload, query the
# monitor server over the system's own RPC, and require nonzero RPC traffic
# in the Prometheus exposition.
stats:
	$(GO) run ./cmd/kstat -format prom -workload file1 | grep -E '^mach_rpc_calls_total [1-9]'
	@echo "stats smoke ok: monitor served a snapshot with live RPC counters"

# Smoke test the profiler end to end: boot wpos, open a profile window over
# the monitor's RPC, run a workload inside it, and require nonzero
# attributed cycles in the rendered breakdown.
profile:
	$(GO) run ./cmd/kprof -workload file1 -format servers | grep -E 'attributed [1-9][0-9]* cycles'
	@echo "profile smoke ok: kprof attributed the workload over the system's own RPC"

# Benchmark gate: regenerate Table 1 and fail on any WPOS/native ratio
# more than 5% above the committed BENCH_baseline.json.
benchgate:
	sh scripts/benchgate.sh

# SMP smoke: boot with 4 engines, run concurrent workloads, and assert
# nonzero per-engine cycles and migrations through the monitor's RPC.
smp:
	sh scripts/smp_smoke.sh

# Black-box smoke: boot wpos, run a workload, fetch a flight dump over the
# monitor's RPC, and assert nonzero flight-ring events per engine and a
# populated wait-for graph with no false deadlock cycles.
blackbox:
	sh scripts/blackbox_smoke.sh

# Tail-latency smoke: boot wpos, run a workload, fetch the tail dump over
# the monitor's RPC, and assert recorded request families plus retained
# exemplars with multi-hop (driver-chained) ledgers.
tail:
	sh scripts/tail_smoke.sh

# Chaos short soak: one fixed seed driving mixed OS/2 + POSIX + MVM + RPC
# traffic through all six fault kinds with the invariant oracle on (~30s).
# A failure prints the exact -chaos.seed/-chaos.actions flags to replay it
# deterministically; see internal/chaos and EXPERIMENTS.md (E-CHAOS).
chaos:
	$(GO) test ./internal/chaos -run 'TestChaosSoak|TestChaosSingleCPU|TestChaosDeterministic' -short -v
