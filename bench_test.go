package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kflight"
	"repro/internal/kprof"
	"repro/internal/kstat"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Table 1 — OS/2 Performance Comparisons.  One benchmark per row; the
// reported metrics are simulated cycles for each system and the
// WPOS-to-native ratio (the paper's headline column).
// ---------------------------------------------------------------------------

func benchmarkTable1Row(b *testing.B, row workload.Row) {
	b.Helper()
	var ratio, wpos, native float64
	for i := 0; i < b.N; i++ {
		w, err := core.Boot(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		n, err := core.BootNative(cpu.Pentium133(), 16, 16384)
		if err != nil {
			b.Fatal(err)
		}
		wres, err := workload.Run(row, w.WorkloadEnv())
		if err != nil {
			b.Fatal(err)
		}
		nres, err := workload.Run(row, n.WorkloadEnv())
		if err != nil {
			b.Fatal(err)
		}
		wpos = float64(wres.Cycles)
		native = float64(nres.Cycles)
		ratio = wpos / native
	}
	b.ReportMetric(wpos, "wpos-cycles")
	b.ReportMetric(native, "native-cycles")
	b.ReportMetric(ratio, "ratio")
}

func BenchmarkTable1_FileIntensive1(b *testing.B)  { benchmarkTable1Row(b, workload.FileIntensive1) }
func BenchmarkTable1_FileIntensive2(b *testing.B)  { benchmarkTable1Row(b, workload.FileIntensive2) }
func BenchmarkTable1_GraphicsLow(b *testing.B)     { benchmarkTable1Row(b, workload.GraphicsLow) }
func BenchmarkTable1_GraphicsMedium(b *testing.B)  { benchmarkTable1Row(b, workload.GraphicsMedium) }
func BenchmarkTable1_GraphicsHigh(b *testing.B)    { benchmarkTable1Row(b, workload.GraphicsHigh) }
func BenchmarkTable1_PMTaskingMedium(b *testing.B) { benchmarkTable1Row(b, workload.PMTaskingMedium) }
func BenchmarkTable1_PMTaskingHigh(b *testing.B)   { benchmarkTable1Row(b, workload.PMTaskingHigh) }

// ---------------------------------------------------------------------------
// Table 2 — Trap versus RPC: instructions, cycles, bus cycles and CPI for
// thread_self and a 32-byte RPC.
// ---------------------------------------------------------------------------

func BenchmarkTable2_TrapVsRPC(b *testing.B) {
	var t bench.Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		t, err = bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t.TrapInstr, "trap-instr")
	b.ReportMetric(t.RPCInstr, "rpc-instr")
	b.ReportMetric(t.TrapCycles, "trap-cycles")
	b.ReportMetric(t.RPCCycles, "rpc-cycles")
	b.ReportMetric(t.TrapBus, "trap-bus")
	b.ReportMetric(t.RPCBus, "rpc-bus")
	b.ReportMetric(t.TrapCPI, "trap-cpi")
	b.ReportMetric(t.RPCCPI, "rpc-cpi")
}

// ---------------------------------------------------------------------------
// IPC rework sweep — the "two to ten times improvement in message-passing
// performance ... depending primarily on the number of bytes transmitted".
// ---------------------------------------------------------------------------

func BenchmarkFigureIPCSweep(b *testing.B) {
	var pts []bench.IPCPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.IPCSweep()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.Speedup, fmt.Sprintf("speedup@%dB", p.Size))
	}
}

// ---------------------------------------------------------------------------
// Figure 1 — architecture: the booted system regenerates its own layer
// diagram; the benchmark measures a full multi-personality boot.
// ---------------------------------------------------------------------------

func BenchmarkFigure1_Boot(b *testing.B) {
	var comps int
	for i := 0; i < b.N; i++ {
		s, err := core.Boot(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		comps = len(s.Inventory())
	}
	b.ReportMetric(float64(comps), "components")
}

// ---------------------------------------------------------------------------
// E5 — name-service cost: X.500-style versus the Release 2 simplified
// service.
// ---------------------------------------------------------------------------

func BenchmarkNameServiceFullVsSimple(b *testing.B) {
	var r bench.NSResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.NameServices()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.FullCycles), "full-cycles")
	b.ReportMetric(float64(r.SimpleCycles), "simple-cycles")
	b.ReportMetric(r.Ratio, "ratio")
}

// ---------------------------------------------------------------------------
// E6 — fine-grained objects versus MK++-style coarse objects on the
// networking path.
// ---------------------------------------------------------------------------

func BenchmarkObjectsFineVsCoarse(b *testing.B) {
	var r bench.ObjResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.Objects()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.FineCycles), "fine-cycles")
	b.ReportMetric(float64(r.CoarseCycles), "coarse-cycles")
	b.ReportMetric(r.Ratio, "ratio")
	b.ReportMetric(float64(r.MetadataBytes), "metadata-bytes")
}

// ---------------------------------------------------------------------------
// E7 — the two-memory-managers footprint blow-up.
// ---------------------------------------------------------------------------

func BenchmarkOS2MemoryFootprint(b *testing.B) {
	var r bench.MemResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.MemFootprint()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Overhead, "resident/requested")
	b.ReportMetric(float64(r.MetadataBytes), "os2-metadata-bytes")
	b.ReportMetric(float64(r.MapEntries), "kernel-map-entries")
}

// ---------------------------------------------------------------------------
// E9 — driver-model ablation: the same sector write through the three
// driver architectures.
// ---------------------------------------------------------------------------

func BenchmarkDriverModels(b *testing.B) {
	var rs []bench.DriverResult
	var err error
	for i := 0; i < b.N; i++ {
		rs, err = bench.DriverModels()
		if err != nil {
			b.Fatal(err)
		}
	}
	slug := map[string]string{
		"in-kernel BSD-style":        "kernel-cycles",
		"OODDM fine-grained objects": "ooddm-cycles",
		"user-level task":            "user-cycles",
	}
	for _, r := range rs {
		b.ReportMetric(float64(r.Cycles), slug[r.Model])
	}
}

// ---------------------------------------------------------------------------
// E10 — MVM: interpreted versus block-translated guest execution.
// ---------------------------------------------------------------------------

func BenchmarkMVMTranslator(b *testing.B) {
	var r bench.MVMResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.MVMTranslator()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.InterpCycles), "interp-cycles")
	b.ReportMetric(float64(r.ColdTransCycles), "translated-cold-cycles")
	b.ReportMetric(float64(r.HotTransCycles), "translated-hot-cycles")
	b.ReportMetric(r.Speedup, "speedup")
}

// ---------------------------------------------------------------------------
// E-POOL — multi-threaded server pools: modeled file-server throughput for
// C concurrent clients against a pool of P server threads, from the
// ktrace-calibrated bottleneck bound (see internal/bench/concurrency.go).
// ---------------------------------------------------------------------------

func BenchmarkConcurrentClients(b *testing.B) {
	for _, pool := range []int{1, 2, 4} {
		for _, clients := range []int{1, 2, 4, 8} {
			pool, clients := pool, clients
			b.Run(fmt.Sprintf("pool=%d/clients=%d", pool, clients), func(b *testing.B) {
				var r bench.ConcurrencyResult
				var err error
				for i := 0; i < b.N; i++ {
					r, err = bench.ConcurrentClients(clients, pool, 25)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(r.ModeledOpsPerSec, "modeled-ops/s")
				b.ReportMetric(r.CyclesPerOp, "serial-cycles/op")
				b.ReportMetric(r.ServerCycles, "server-cycles/op")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Correctness gates over the harness itself.
// ---------------------------------------------------------------------------

// TestServerPoolScaling gates the E-POOL acceptance criteria: a pool of 4
// must model at least 2x the single-threaded throughput once 4 clients
// contend, the single-client serial latency must not change with pool
// size, and the real concurrent phase must actually spread requests
// across the pool.
func TestServerPoolScaling(t *testing.T) {
	single, err := bench.ConcurrentClients(4, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := bench.ConcurrentClients(4, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pool=1: %v", single)
	t.Logf("pool=4: %v (worker ops %v)", pooled, pooled.WorkerOps)

	speedup := pooled.ModeledOpsPerSec / single.ModeledOpsPerSec
	t.Logf("modeled speedup at 4 clients: %.2fx", speedup)
	if speedup < 2 {
		t.Errorf("pool=4 models %.2fx of pool=1 at 4 clients; want >= 2x", speedup)
	}

	// Single-client latency is not taxed by the pool: serial cycles per
	// op must agree within 1% between the two server configurations.
	drift := pooled.CyclesPerOp / single.CyclesPerOp
	if drift < 0.99 || drift > 1.01 {
		t.Errorf("serial latency drifted with pool size: %.0f vs %.0f cycles/op",
			pooled.CyclesPerOp, single.CyclesPerOp)
	}

	// The concurrent phase ran every op and the pool shared the load.
	if pooled.RealOps == 0 || len(pooled.WorkerOps) != 4 {
		t.Fatalf("concurrent phase: ops=%d workers=%v", pooled.RealOps, pooled.WorkerOps)
	}
	for i, ops := range pooled.WorkerOps {
		if ops == 0 {
			t.Errorf("pool worker %d handled no requests: %v", i, pooled.WorkerOps)
		}
	}
}

func TestTable2AgainstPaper(t *testing.T) {
	got, err := bench.Table2()
	if err != nil {
		t.Fatal(err)
	}
	gi, gc, gb, gcpi := got.Ratios()
	pi, pc, pb, pcpi := bench.PaperTable2.Ratios()
	t.Logf("measured: trap %.0f/%.0f/%.0f/%.2f  rpc %.0f/%.0f/%.0f/%.2f",
		got.TrapInstr, got.TrapCycles, got.TrapBus, got.TrapCPI,
		got.RPCInstr, got.RPCCycles, got.RPCBus, got.RPCCPI)
	t.Logf("ratios: measured %.2f/%.2f/%.2f/%.2f vs paper %.2f/%.2f/%.2f/%.2f",
		gi, gc, gb, gcpi, pi, pc, pb, pcpi)
	within := func(name string, got, want, tol float64) {
		if got < want/tol || got > want*tol {
			t.Errorf("%s ratio %.2f vs paper %.2f beyond %.1fx tolerance", name, got, want, tol)
		}
	}
	within("instructions", gi, pi, 1.4)
	within("cycles", gc, pc, 1.6)
	within("bus", gb, pb, 1.6)
	within("cpi", gcpi, pcpi, 1.5)
}

func TestIPCSweepBand(t *testing.T) {
	pts, err := bench.IPCSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("size %6dB: old=%d new=%d speedup=%.2f", p.Size, p.OldCycles, p.NewCycles, p.Speedup)
		if p.Speedup < 1.5 {
			t.Errorf("size %d: rework speedup %.2f below 1.5x", p.Size, p.Speedup)
		}
	}
	if pts[0].Speedup < pts[len(pts)-1].Speedup {
		// Small messages benefit most: the fixed path dominates.
		t.Log("note: speedup grows with size in this run")
	}
}

func TestNameServiceRatio(t *testing.T) {
	r, err := bench.NameServices()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full=%d simple=%d ratio=%.1f", r.FullCycles, r.SimpleCycles, r.Ratio)
	if r.Ratio < 5 {
		t.Errorf("X.500 service should be >=5x the simplified one, got %.1f", r.Ratio)
	}
}

func TestObjectsRatio(t *testing.T) {
	r, err := bench.Objects()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fine=%d coarse=%d ratio=%.2f dispatches=%d metadata=%dB",
		r.FineCycles, r.CoarseCycles, r.Ratio, r.FineDispatches, r.MetadataBytes)
	if r.Ratio <= 1.1 {
		t.Errorf("fine-grained objects should cost >1.1x coarse, got %.2f", r.Ratio)
	}
}

func TestMemFootprintOverhead(t *testing.T) {
	r, err := bench.MemFootprint()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("requested=%dB resident=%dB overhead=%.1fx metadata=%dB entries=%d",
		r.RequestedBytes, r.ResidentBytes, r.Overhead, r.MetadataBytes, r.MapEntries)
	if r.Overhead < 5 {
		t.Errorf("footprint overhead %.1fx too small for eager byte-granular allocations", r.Overhead)
	}
}

func TestDriverModelOrdering(t *testing.T) {
	rs, err := bench.DriverModels()
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]uint64{}
	for _, r := range rs {
		byModel[r.Model] = r.Cycles
		t.Logf("%-28s %d cycles/op", r.Model, r.Cycles)
	}
	if !(byModel["in-kernel BSD-style"] < byModel["OODDM fine-grained objects"] &&
		byModel["OODDM fine-grained objects"] < byModel["user-level task"]) {
		t.Errorf("expected kernel < ooddm < user ordering: %v", byModel)
	}
}

func TestMVMTranslatorSpeedup(t *testing.T) {
	r, err := bench.MVMTranslator()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("interp=%d cold=%d hot=%d speedup=%.1fx (cache %d hits / %d misses)",
		r.InterpCycles, r.ColdTransCycles, r.HotTransCycles, r.Speedup, r.CacheHits, r.CacheMisses)
	if r.Speedup < 2 {
		t.Errorf("hot translation speedup %.1fx below 2x", r.Speedup)
	}
}

func TestFSPersonalityMatrix(t *testing.T) {
	rs, err := bench.FSPersonality()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		t.Logf("%-5s longnames=%v eas=%v case-sensitive=%v", r.FS, r.LongNameOK, r.EAOK, r.CaseSensitive)
	}
	want := map[string][3]bool{ // longname, ea, case-sensitive
		"fat":  {false, false, false},
		"hpfs": {true, true, false},
		"jfs":  {true, true, true},
	}
	for _, r := range rs {
		w := want[r.FS]
		if r.LongNameOK != w[0] || r.EAOK != w[1] || r.CaseSensitive != w[2] {
			t.Errorf("%s capabilities wrong: %+v", r.FS, r)
		}
	}
}

// ---------------------------------------------------------------------------
// E-CTR — Table 2 derived from the kstat fabric, plus the observation-only
// guarantee: attaching kstat must not move a single modeled cycle.
// ---------------------------------------------------------------------------

func TestECTRCounterDerivedTable2(t *testing.T) {
	res, err := bench.CounterTable2()
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapOps != 400 || res.RPCOps != 400 {
		t.Fatalf("kstat op counts trap=%d rpc=%d, want 400/400", res.TrapOps, res.RPCOps)
	}
	// Observation-only: the direct measurement with the fabric attached is
	// byte-identical to Table 2 measured with no fabric at all.
	plain, err := bench.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if res.Direct != plain {
		t.Fatalf("kstat perturbed the model:\nwith fabric    %+v\nwithout fabric %+v", res.Direct, plain)
	}
	// The counter-derived table must agree with the direct one exactly:
	// both divide the same engine-charge sums by the same op count.
	if res.FromKstat != res.Direct {
		t.Errorf("counter-derived table diverges from direct:\nfrom kstat %+v\ndirect     %+v", res.FromKstat, res.Direct)
	}
	gi, gc, gb, gcpi := res.FromKstat.Ratios()
	pi, pc, pb, pcpi := bench.PaperTable2.Ratios()
	t.Logf("counter-derived ratios %.2f/%.2f/%.2f/%.2f vs paper %.2f/%.2f/%.2f/%.2f",
		gi, gc, gb, gcpi, pi, pc, pb, pcpi)
	within := func(name string, got, want, tol float64) {
		if got < want/tol || got > want*tol {
			t.Errorf("%s ratio %.2f vs paper %.2f beyond %.1fx tolerance", name, got, want, tol)
		}
	}
	within("instructions", gi, pi, 1.4)
	within("cycles", gc, pc, 1.6)
	within("bus", gb, pb, 1.6)
	within("cpi", gcpi, pcpi, 1.5)
}

func TestWorkloadObservationOnly(t *testing.T) {
	// Two identical boots; detach the fabric from one.  A Table 1 workload
	// must model exactly the same cycles on both.
	a, err := core.Boot(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Boot(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kstat.Detach(b.Kernel.CPU)
	ra, err := workload.Run(workload.FileIntensive1, a.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := workload.Run(workload.FileIntensive1, b.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cycles != rb.Cycles {
		t.Fatalf("kstat perturbed the workload: with=%d without=%d", ra.Cycles, rb.Cycles)
	}
	if kstat.For(a.Kernel.CPU).Counter("mach.rpc.calls").Value() == 0 {
		t.Fatal("fabric attached but saw no RPC traffic")
	}
}

func TestProfWorkloadObservationOnly(t *testing.T) {
	// The kprof acceptance gate: two identical boots, one with the profiler
	// attached and enabled, one without.  File Intensive 1 must model the
	// same cycle count on both — attribution observes the charge stream, it
	// never joins it.
	a, err := core.Boot(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Boot(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := kprof.Attach(a.Kernel.CPU)
	defer kprof.Detach(a.Kernel.CPU)
	p.Enable()
	ra, err := workload.Run(workload.FileIntensive1, a.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := workload.Run(workload.FileIntensive1, b.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cycles != rb.Cycles {
		t.Fatalf("kprof perturbed the workload: attached=%d detached=%d", ra.Cycles, rb.Cycles)
	}
	// The attached run must actually have attributed the workload: the
	// profile's total equals the engine's charge stream over the window.
	cycles, _, _ := p.Snapshot().Totals()
	if cycles == 0 {
		t.Fatal("profiler attached but attributed no cycles")
	}
	if cycles < ra.Cycles {
		t.Fatalf("profile attributed %d cycles, workload modeled %d — cycles escaped attribution",
			cycles, ra.Cycles)
	}
}

func TestFlightWorkloadObservationOnly(t *testing.T) {
	// The kflight acceptance gate: core.Boot attaches the flight recorder
	// by default; detach it from one of two identical boots.  File
	// Intensive 1 must model bit-identical cycles either way — the
	// recorder's hooks read counters and store pointers, they never
	// charge.
	a, err := core.Boot(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Boot(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kflight.Detach(b.Kernel.CPU)
	ra, err := workload.Run(workload.FileIntensive1, a.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := workload.Run(workload.FileIntensive1, b.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cycles != rb.Cycles {
		t.Fatalf("kflight perturbed the workload: attached=%d detached=%d", ra.Cycles, rb.Cycles)
	}
	// The attached run must actually have recorded: events in the ring
	// and (with the classic serve threads parked in their receives) a
	// populated wait-for graph.
	rec := kflight.For(a.Kernel.CPU)
	if rec == nil {
		t.Fatal("boot did not attach a flight recorder")
	}
	var events uint64
	for slot := 0; slot < rec.Engines(); slot++ {
		events += rec.Emitted(slot)
	}
	if events == 0 {
		t.Fatal("recorder attached but captured no events")
	}
	if len(a.Kernel.WaitEdges()) == 0 {
		t.Fatal("wait-for graph empty despite parked server threads")
	}
}
