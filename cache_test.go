package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workload"
)

// seedTable1 pins the exact Table 1 cycle counts of the seed
// reproduction (commit bf24cc7, pre-buffer-cache).  The buffer cache is
// strictly opt-in: with CacheSectors = 0 (the default) the redesigned
// mount API must charge the very same cycles — the cache is observation-
// equivalent to off.  If a deliberate cost-model change moves these
// numbers, update them together with the experiment write-ups.
// The PM Tasking WPOS rows were re-pinned (+154 cycles each) when
// pmTasking moved to serial dispatch: the old two-goroutine shape let
// the host scheduler reorder cache-model charges, so these two rows
// flickered a few cache misses below the old pins on some runs.
var seedTable1 = map[workload.Row]struct{ wpos, native uint64 }{
	workload.FileIntensive1:  {43136087, 16498585},
	workload.FileIntensive2:  {11463722, 4243674},
	workload.GraphicsLow:     {2563987, 3027478},
	workload.GraphicsMedium:  {3098087, 3922358},
	workload.GraphicsHigh:    {3571027, 4979998},
	workload.PMTaskingMedium: {8811666, 11410778},
	workload.PMTaskingHigh:   {12798266, 13500778},
}

// TestCacheObservationOff gates the tentpole's compatibility promise:
// the default (cache-off) configuration reproduces the seed's Table 1
// cycle for cycle, and no bcache metric ever moves.
func TestCacheObservationOff(t *testing.T) {
	rows, err := bench.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		want, ok := seedTable1[r.Row]
		if !ok {
			t.Fatalf("no seed record for row %s", r.Row)
		}
		if r.WPOS != want.wpos {
			t.Errorf("%s: WPOS cycles = %d, seed = %d (cache-off path diverged)", r.Row, r.WPOS, want.wpos)
		}
		if r.Native != want.native {
			t.Errorf("%s: native cycles = %d, seed = %d", r.Row, r.Native, want.native)
		}
	}

	// And the metrics fabric records zero cache activity when off.
	s, err := core.Boot(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Run(workload.FileIntensive1, s.WorkloadEnv()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bcache.hits", "bcache.misses", "bcache.readahead", "bcache.writeback"} {
		if v := s.Stats.Counter(name).Value(); v != 0 {
			t.Errorf("%s = %d with the cache off, want 0", name, v)
		}
	}
}

// TestCacheMonotonicRatios gates experiment E-CACHE: the file-intensive
// WPOS/native ratios must fall toward the native line as the cache
// grows, never rise — each size absorbs at least as many driver
// crossings as the last.
func TestCacheMonotonicRatios(t *testing.T) {
	pts, err := bench.CacheSweep([]int{0, 64, 256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FI1 > pts[i-1].FI1 {
			t.Errorf("FI1 ratio rose from %.3f to %.3f going %d -> %d sectors",
				pts[i-1].FI1, pts[i].FI1, pts[i-1].Sectors, pts[i].Sectors)
		}
		if pts[i].FI2 > pts[i-1].FI2 {
			t.Errorf("FI2 ratio rose from %.3f to %.3f going %d -> %d sectors",
				pts[i-1].FI2, pts[i].FI2, pts[i-1].Sectors, pts[i].Sectors)
		}
	}
	// The first cache size must already beat the uncached seed clearly.
	if pts[1].FI1 >= pts[0].FI1 || pts[1].FI2 >= pts[0].FI2 {
		t.Errorf("64-sector cache did not improve on uncached: FI1 %.3f -> %.3f, FI2 %.3f -> %.3f",
			pts[0].FI1, pts[1].FI1, pts[0].FI2, pts[1].FI2)
	}

	// Cache-on activity is visible in the system-wide kstat fabric (the
	// same Set the monitor server and cmd/kstat export).
	cfg := core.DefaultConfig()
	cfg.CacheSectors = 256
	s, err := core.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Run(workload.FileIntensive1, s.WorkloadEnv()); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Counter("bcache.hits").Value() == 0 {
		t.Error("bcache.hits = 0 after a file-intensive run with the cache on")
	}
	if s.Stats.Counter("bcache.writeback").Value() == 0 {
		t.Error("bcache.writeback = 0 after a file-intensive run with the cache on")
	}
}
