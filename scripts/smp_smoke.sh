#!/bin/sh
# SMP smoke: boot a 4-engine system, drive concurrent copies of the file
# workload, and verify through the monitor server's RPC (cmd/kstat is a
# monitor client) that the dispatcher really ran the machine as an SMP:
# every engine consumed cycles and cross-engine migrations happened.
set -eu

cd "$(dirname "$0")/.."

out=$(go run ./cmd/kstat -cpus 4 -clients 8 -workload file1 -format text -family cpu.)
echo "$out"
echo

test "$(echo "$out" | awk '$1 == "cpu.engines" {print $2}')" = 4 || {
	echo "smp smoke: cpu.engines gauge is not 4" >&2
	exit 1
}

for e in 0 1 2 3; do
	cyc=$(echo "$out" | awk -v f="cpu.e$e.cycles" '$1 == f {print $2}')
	if [ -z "$cyc" ] || [ "$cyc" -le 0 ]; then
		echo "smp smoke: engine $e consumed no cycles" >&2
		exit 1
	fi
done

mig=$(echo "$out" | awk '$1 ~ /^cpu\.e[0-9]+\.migrations$/ {s += $2} END {print s + 0}')
if [ "$mig" -le 0 ]; then
	echo "smp smoke: no cross-engine migrations recorded" >&2
	exit 1
fi

echo "smp smoke ok: 4 engines busy, $mig migrations, queried over the monitor's RPC"
