#!/bin/sh
# Tier-2 gate: static analysis plus race-detector runs of the packages with
# real concurrency (the tracer's ring is hammered by concurrent emitters;
# mach runs server pools and bound threads; vfs and os2 serve pooled
# multi-threaded RPC with shared bookkeeping hammered by their pool tests).
# Tier-1 (go build && go test ./...) stays the merge gate; this catches
# data races tier-1 cannot.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/ktrace/... ./internal/mach/... ./internal/vfs/... ./internal/os2/...
