#!/bin/sh
# Tier-2 gate: static analysis plus race-detector runs of the packages with
# real concurrency (the tracer's ring is hammered by concurrent emitters;
# kstat's sharded counters and histograms are recorded from every server
# thread at once; mach runs server pools and bound threads; vfs and os2
# serve pooled multi-threaded RPC with shared bookkeeping hammered by their
# pool tests; the monitor serves pooled snapshot queries over that RPC;
# bcache is hit by every file-server pool thread at once; kprof's charge
# sink and context stack are driven from every charging thread at once;
# cpu's Complex routes every charge through a per-OS-thread binding table
# while the SMP dispatcher binds/steals from many goroutines at once;
# kflight's lock-free rings are swept by dump queries racing live
# emitters while the watchdog polls the kstat fabric from its own
# goroutine; the vectored paths move region descriptors and batched
# sub-messages between client threads and pooled servers with zero
# copies, so aliasing bugs there surface only under the race detector —
# the vfs and drivers suites drive CallV/ReadV/WriteV/StatBatch and the
# vectored write-behind flush from many concurrent clients; klat's
# per-request hops are stamped by whichever thread holds the message —
# client, pool worker, carrier demux — while monitor dump queries walk
# live ledgers under the family locks).
# Tier-1 (go build && go test ./...) stays the merge gate; this catches
# data races tier-1 cannot.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/cpu/... ./internal/kstat/... ./internal/ktrace/... ./internal/kprof/... ./internal/kflight/... ./internal/klat/... ./internal/mach/... ./internal/vfs/... ./internal/os2/... ./internal/monitor/... ./internal/bcache/... ./internal/drivers/...

# Chaos short soak under the race detector: one seed, all six fault kinds,
# full invariant oracle.  Kept -short so the race-instrumented run stays in
# CI budget; `make chaos` runs the same corpus without instrumentation and
# a failure in either prints the -chaos.seed flags for deterministic replay.
go test -race ./internal/chaos/ -short -run 'TestChaosSoak|TestChaosSingleCPU'

# Benchmark gate: regenerate Table 1 and fail on any WPOS/native ratio
# drifting more than 5% above the committed BENCH_baseline.json — the
# always-on flight recorder must stay invisible to the cost model here
# just as the bit-identical tests require.
sh scripts/benchgate.sh
