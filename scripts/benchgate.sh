#!/bin/sh
# Benchmark gate: regenerate Table 1 and compare each WPOS/native ratio
# against the committed baseline (BENCH_baseline.json); any ratio more
# than 5% above its baseline fails the build.  Regenerate the baseline
# with `go run ./cmd/benchtables -json BENCH_baseline.json` after a
# deliberate cost-model change, together with the seed pins in
# cache_test.go / smp_test.go.
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/benchtables -only 1 -gate BENCH_baseline.json
