#!/bin/sh
# Benchmark gate: regenerate Table 1 and compare each WPOS/native ratio
# against the committed baseline (BENCH_baseline.json); any ratio more
# than 5% above its baseline fails the build.  Regenerate the baseline
# with `go run ./cmd/benchtables -json BENCH_baseline.json` after a
# deliberate cost-model change, together with the seed pins in
# cache_test.go / smp_test.go.
#
# The second run asserts the E-XFER crossover cells: copying must stay
# cheaper than region mapping below a page, region transfer must stay
# cheaper from a page up (per-page map cost, zero per-byte), batching
# must amortize the crossing cost of small transfers, and the
# file-intensive ratios must not regress with zero-copy + batching on.
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/benchtables -only 1 -gate BENCH_baseline.json
go run ./cmd/benchtables -only xfer -gatexfer
