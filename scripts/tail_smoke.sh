#!/bin/sh
# Tail-latency smoke: boot wpos, run the file workload, fetch the tail
# dump over the monitor server's RPC (cmd/klat is a monitor client), and
# verify the ledger plane saw the run: per-(server, op) histograms with
# recorded requests, retained exemplars, and at least one multi-hop
# ledger — a file-server request whose waterfall shows the nested
# block-driver hop (file ops chain through the driver on misses).
set -eu

cd "$(dirname "$0")/.."

out=$(go run ./cmd/klat -cpus 2 -pool 2 -cache 32 -workload file1 -top 2)
echo "$out"
echo

if ! echo "$out" | grep -q '^fileserver .* [1-9]'; then
	echo "tail smoke: no file-server request families recorded" >&2
	exit 1
fi

exemplars=$(echo "$out" | grep -c '^\*call' || true)
if [ "$exemplars" -lt 1 ]; then
	echo "tail smoke: no exemplar ledgers retained" >&2
	exit 1
fi

if ! echo "$out" | grep -q '^\*  call blockdrv'; then
	echo "tail smoke: no multi-hop ledger (no nested block-driver hop retained)" >&2
	exit 1
fi

echo "tail smoke ok: $exemplars exemplar ledgers, nested driver hops present"
