#!/bin/sh
# Black-box smoke: boot wpos, run the file workload, fetch a flight dump
# over the monitor server's RPC (cmd/kflight is a monitor client), and
# verify the diagnosis plane saw the run: every engine's ring buffered
# events and the wait-for graph carries at least one edge (the classic
# serve threads park in their receives, so a live system is never empty).
set -eu

cd "$(dirname "$0")/.."

out=$(go run ./cmd/kflight -cpus 2 -workload file1 -format text)
echo "$out"
echo

edges=$(echo "$out" | sed -n 's/^wait-for edges (\([0-9]*\) total.*/\1/p')
if [ -z "$edges" ] || [ "$edges" -lt 1 ]; then
	echo "blackbox smoke: wait-for graph is empty (edges=${edges:-none})" >&2
	exit 1
fi

for e in 0 1; do
	buffered=$(echo "$out" | sed -n "s/^engine $e: \([0-9]*\) events buffered.*/\1/p")
	if [ -z "$buffered" ] || [ "$buffered" -le 0 ]; then
		echo "blackbox smoke: engine $e ring buffered no events" >&2
		exit 1
	fi
done

if ! echo "$out" | grep -q '^no cycles in the wait-for graph$'; then
	echo "blackbox smoke: a healthy boot reported a deadlock cycle" >&2
	exit 1
fi

echo "blackbox smoke ok: $edges wait edges, both engine rings populated, no false deadlocks"
