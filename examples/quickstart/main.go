// Quickstart: boot Workplace OS, do one RPC to the file server through
// the OS/2 personality, and read the performance counters — the minimal
// end-to-end tour of the public surface.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Boot the whole stack: microkernel, microkernel services, shared
	// services (file server on a user-level block driver, FAT root),
	// and the OS/2, POSIX and MVM personalities.
	sys, err := core.Boot(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted:")
	for _, line := range sys.BootLog() {
		fmt.Println("  ", line)
	}

	// An OS/2 process. Each Dos file call is a real RPC: process task ->
	// file server task -> (another RPC) -> user-level driver task.
	p, err := sys.OS2.CreateProcess("quickstart.exe")
	if err != nil {
		log.Fatal(err)
	}
	before := sys.Kernel.CPU.Counters()

	h, e := p.DosOpen("/README.1ST", true, true)
	if e != 0 {
		log.Fatalf("DosOpen: %v", e)
	}
	if _, e := p.DosWrite(h, []byte("welcome to the microkernel\n")); e != 0 {
		log.Fatalf("DosWrite: %v", e)
	}
	if e := p.DosSetFilePtr(h, 0); e != 0 {
		log.Fatalf("seek: %v", e)
	}
	buf := make([]byte, 64)
	n, e := p.DosRead(h, buf)
	if e != 0 {
		log.Fatalf("DosRead: %v", e)
	}
	p.DosClose(h)

	delta := sys.Kernel.CPU.Counters().Sub(before)
	fmt.Printf("\nread back: %q\n", buf[:n])
	fmt.Printf("cost of open+write+seek+read+close across three tasks:\n  %s\n", delta)
	fmt.Printf("address-space switches: %d (every RPC hop is two)\n", delta.Switches)
}
