// driverlab: the three device-driver architectures side by side on the
// same workload — the user-level task model (with HRM request/yield/grant
// and reflected interrupts), the in-kernel BSD style, and Taligent's
// OODDM fine-grained objects — with per-operation cycle costs.
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/drivers"
	"repro/internal/iosys"
	"repro/internal/mach"
)

func main() {
	type build func(k *mach.Kernel, disk *drivers.Disk, hrm *iosys.HRM, intr *iosys.InterruptController) (drivers.BlockDriver, error)
	models := []struct {
		name  string
		build build
	}{
		{"in-kernel BSD-style", func(k *mach.Kernel, d *drivers.Disk, _ *iosys.HRM, ic *iosys.InterruptController) (drivers.BlockDriver, error) {
			return drivers.NewKernelBlockDriver(k, k.Layout(), d, ic)
		}},
		{"OODDM fine-grained", func(k *mach.Kernel, d *drivers.Disk, _ *iosys.HRM, ic *iosys.InterruptController) (drivers.BlockDriver, error) {
			return drivers.NewOODDMBlockDriver(k, k.Layout(), d, ic)
		}},
		{"user-level task", func(k *mach.Kernel, d *drivers.Disk, hrm *iosys.HRM, ic *iosys.InterruptController) (drivers.BlockDriver, error) {
			return drivers.NewUserBlockDriver(k, k.Layout(), d, hrm, ic, 1)
		}},
	}

	fmt.Printf("%-22s %14s %14s %12s\n", "driver model", "write cyc/op", "read cyc/op", "interrupts")
	for _, m := range models {
		k := mach.New(cpu.Pentium133())
		intr := iosys.NewInterruptController(k.CPU, k.Layout(), 32)
		dma := iosys.NewDMAController(k.CPU, k.Layout(), 4)
		hrm := iosys.NewHRM(k.CPU, k.Layout())
		disk, err := drivers.NewDisk(k.CPU, dma, intr, 14, 4096)
		if err != nil {
			log.Fatal(err)
		}
		drv, err := m.build(k, disk, hrm, intr)
		if err != nil {
			log.Fatal(err)
		}
		app := k.NewTask("app")
		th, err := app.NewBoundThread("main")
		if err != nil {
			log.Fatal(err)
		}

		buf := make([]byte, drivers.SectorSize)
		const warm, N = 10, 100
		for i := 0; i < warm; i++ {
			if err := drv.WriteSectors(th, 0, buf); err != nil {
				log.Fatal(err)
			}
		}
		base := k.CPU.Counters()
		for i := 0; i < N; i++ {
			drv.WriteSectors(th, 0, buf)
		}
		wcyc := k.CPU.Counters().Sub(base).Cycles / N
		base = k.CPU.Counters()
		for i := 0; i < N; i++ {
			if _, err := drv.ReadSectors(th, 0, 1); err != nil {
				log.Fatal(err)
			}
		}
		rcyc := k.CPU.Counters().Sub(base).Cycles / N
		fmt.Printf("%-22s %14d %14d %12d\n", m.name, wcyc, rcyc, intr.Count(14))
	}

	// The HRM's request/yield/grant scheme in action.
	fmt.Println("\nhardware resource manager:")
	eng := cpu.NewEngine(cpu.Pentium133())
	hrm := iosys.NewHRM(eng, cpu.NewLayout(0x800000))
	hrm.Register(iosys.Resource{Name: "fb0", Kind: iosys.ResMemory, Base: 0xA0000, Size: 0x10000})
	hrm.Request("fb0", "textdrv", func(r iosys.Resource, who iosys.Owner) bool {
		fmt.Printf("  textdrv asked to yield %s to %s -> yes\n", r.Name, who)
		return true
	})
	if _, err := hrm.Request("fb0", "pmdrv", nil); err != nil {
		log.Fatal(err)
	}
	owner, _ := hrm.Holder("fb0")
	fmt.Printf("  fb0 now held by %s\n", owner)
}
