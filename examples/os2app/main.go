// os2app: a fuller OS/2 personality application — commitment memory,
// named shared memory at coerced addresses, PM messages between two
// processes, and the footprint report that motivates the paper's
// "two memory management systems" complaint.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/os2"
)

func main() {
	sys, err := core.Boot(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	app, err := sys.OS2.CreateProcess("works.exe")
	if err != nil {
		log.Fatal(err)
	}
	helper, err := sys.OS2.CreateProcess("helper.exe")
	if err != nil {
		log.Fatal(err)
	}

	// Commitment-oriented, byte-granular allocations — eagerly
	// committed, defeating the microkernel's lazy zero-fill.
	for i := 0; i < 20; i++ {
		if _, e := app.DosAllocMem(100+uint64(i)*37, true); e != os2.NoError {
			log.Fatalf("DosAllocMem: %v", e)
		}
	}
	rep := app.Mem.Footprint()
	fmt.Printf("heap: requested %d bytes -> resident %d bytes (%.1fx), %d bytes OS/2 metadata over %d kernel map entries\n",
		rep.RequestedBytes, rep.ResidentBytes, rep.Overhead(), rep.MetadataBytes, rep.MapEntries)

	// Named shared memory appears at the SAME address in both
	// processes — the coerced-memory guarantee OS/2 code depends on.
	a1, e := app.DosAllocSharedMem("\\SHAREMEM\\BOARD", 16384)
	if e != os2.NoError {
		log.Fatalf("DosAllocSharedMem: %v", e)
	}
	a2, e := helper.DosGetNamedSharedMem("\\SHAREMEM\\BOARD")
	if e != os2.NoError {
		log.Fatalf("DosGetNamedSharedMem: %v", e)
	}
	fmt.Printf("shared memory: %#x in works.exe, %#x in helper.exe (identical: %v)\n", a1, a2, a1 == a2)
	app.WriteMem(a1, []byte("move 42"))
	b, _ := helper.ReadMem(a2, 7)
	fmt.Printf("helper read %q through the shared segment\n", b)

	// PM message ping-pong through the personality server.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			m, e := helper.WinGetMsg(true)
			if e != os2.NoError {
				log.Fatalf("WinGetMsg: %v", e)
			}
			helper.WinPostMsg(app.PID(), m.Msg+1, m.Arg)
		}
		close(done)
	}()
	for i := 0; i < 3; i++ {
		if e := app.WinPostMsg(helper.PID(), 0x0400, uint32(i)); e != os2.NoError {
			log.Fatalf("WinPostMsg: %v", e)
		}
		m, e := app.WinGetMsg(true)
		if e != os2.NoError {
			log.Fatalf("WinGetMsg: %v", e)
		}
		fmt.Printf("pm round trip %d: reply msg=%#x arg=%d\n", i, m.Msg, m.Arg)
	}
	<-done

	// Files with OS/2 semantics over the FAT boot volume: 8.3 works,
	// long names do not — the format limits the logical layer.
	if h, e := app.DosOpen("/BUDGET.WK4", true, true); e == os2.NoError {
		app.DosWrite(h, []byte("Q1,Q2,Q3,Q4"))
		app.DosClose(h)
		fmt.Println("created /BUDGET.WK4 (8.3 name on FAT)")
	}
	if _, e := app.DosOpen("/Quarterly Budget 1996.worksheet", true, true); e != os2.NoError {
		fmt.Printf("long name on FAT rejected as expected: %v\n", e)
	}
	comp := sys.Files.Disp.Compromises()
	fmt.Printf("semantic compromises recorded by the file server: %d\n", len(comp))
	for _, c := range comp {
		fmt.Printf("  [%s on %s] %s %q: %s\n", c.Profile, c.FS, c.Op, c.Name, c.Detail)
	}
}
