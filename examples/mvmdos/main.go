// mvmdos: the MVM personality in depth — several concurrent DOS guests,
// the block translator against the interpreter on the same program, and
// the translation cache statistics.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mvm"
)

// fib computes fib(20) iteratively into AX and prints a '*' per loop.
func fib() []byte {
	a := mvm.NewAsm()
	a.MovImm(mvm.AX, 1) // fib(n)
	a.MovImm(mvm.BX, 0) // fib(n-1)
	a.MovImm(mvm.CX, 19)
	a.Label("loop")
	a.MovReg(mvm.DX, mvm.AX)
	a.Add(mvm.AX, mvm.BX)
	a.MovReg(mvm.BX, mvm.DX)
	a.Dec(mvm.CX)
	a.CmpImm(mvm.CX, 0)
	a.Jnz("loop")
	a.Store(0x9000, mvm.AX)
	a.Hlt()
	prog, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return prog
}

func main() {
	sys, err := core.Boot(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Run the same binary interpreted and translated.
	prog := fib()
	modes := []struct {
		name string
		mode mvm.ExecMode
	}{{"interpreted", mvm.Interpret}, {"translated", mvm.Translate}}
	for _, m := range modes {
		v, err := sys.MVM.NewVM("fib.com", m.mode)
		if err != nil {
			log.Fatal(err)
		}
		v.Load(prog)
		before := sys.Kernel.CPU.Counters()
		if err := v.Run(1 << 20); err != nil {
			log.Fatal(err)
		}
		cycles := sys.Kernel.CPU.Counters().Sub(before).Cycles
		result := uint16(v.Mem[0x9000]) | uint16(v.Mem[0x9001])<<8
		fmt.Printf("%-12s fib(20)=%d in %d guest instructions, %d simulated cycles\n",
			m.name, result, v.GuestInstrs, cycles)
		if m.mode == mvm.Translate {
			hits, misses, translated := v.TranslatorStats()
			fmt.Printf("%-12s translation cache: %d hits, %d misses, %d guest instructions translated\n",
				"", hits, misses, translated)
			// Run it again hot: the cache is warm, no retranslation.
			v.Load(prog)
			before = sys.Kernel.CPU.Counters()
			v.Run(1 << 20)
			fmt.Printf("%-12s second (hot) run: %d simulated cycles\n",
				"", sys.Kernel.CPU.Counters().Sub(before).Cycles)
		}
	}

	// Multiple concurrent environments, each in its own microkernel task.
	fmt.Println()
	var vms []*mvm.VM
	for i := 0; i < 3; i++ {
		v, err := sys.MVM.NewVM(fmt.Sprintf("box%d.com", i), mvm.Translate)
		if err != nil {
			log.Fatal(err)
		}
		a := mvm.NewAsm()
		for _, ch := range fmt.Sprintf("[vm%d]", i) {
			a.MovImm(mvm.AX, 0x0200)
			a.MovImm(mvm.DX, uint16(ch))
			a.Int(0x21)
		}
		a.MovImm(mvm.AX, 0x4C00).Int(0x21)
		p, _ := a.Assemble()
		v.Load(p)
		vms = append(vms, v)
	}
	for _, v := range vms {
		if err := v.Run(100000); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("console after three guests: %q\n", sys.Console.Contents())
	fmt.Printf("guests live: %d; traps reflected to user level so far: %d+%d+%d\n",
		sys.MVM.Guests(), vms[0].Traps, vms[1].Traps, vms[2].Traps)
}
