// multiserver: the headline claim — multiple operating system
// personalities running concurrently over shared personality-neutral
// servers.  An OS/2 process, a POSIX pipeline and a DOS guest all
// manipulate the same file through the one file server, while the
// networking shared service carries datagrams between two stacks.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mvm"
	"repro/internal/netsvc"
)

func main() {
	sys, err := core.Boot(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// --- OS/2 creates the shared file -----------------------------------
	op, err := sys.OS2.CreateProcess("editor.exe")
	if err != nil {
		log.Fatal(err)
	}
	h, e := op.DosOpen("/JOURNAL.LOG", true, true)
	if e != 0 {
		log.Fatalf("os2 open: %v", e)
	}
	op.DosWrite(h, []byte("os2|"))
	op.DosClose(h)
	fmt.Println("os/2:  created /JOURNAL.LOG")

	// --- POSIX forks a child and pipes the file's contents through ------
	parent, err := sys.POSIX.Spawn("sh")
	if err != nil {
		log.Fatal(err)
	}
	r, w, pe := parent.Pipe()
	if pe != 0 {
		log.Fatalf("pipe: %v", pe)
	}
	child, pe := parent.Fork("cat")
	if pe != 0 {
		log.Fatalf("fork: %v", pe)
	}
	go func() {
		fd, _ := child.Open("/journal.log", 0) // case-folded on FAT
		buf := make([]byte, 32)
		n, _ := child.Read(fd, buf)
		child.Write(w, buf[:n])
		child.Write(w, []byte("posix|"))
		child.Close(fd)
		child.Close(w)
		parent.Close(w)
	}()
	buf := make([]byte, 64)
	var got []byte
	for {
		n, e := parent.Read(r, buf)
		if e != 0 || n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	fmt.Printf("posix: child piped %q to parent\n", got)

	// --- A DOS guest appends through MVM's virtual device drivers -------
	v, err := sys.MVM.NewVM("append.com", mvm.Translate)
	if err != nil {
		log.Fatal(err)
	}
	a := mvm.NewAsm()
	a.MovImm(mvm.AX, 0x3D00).MovImm(mvm.DX, 0x100).Int(0x21) // open
	a.MovReg(mvm.BX, mvm.AX)
	a.MovImm(mvm.AX, 0x4000).MovImm(mvm.CX, 4).MovImm(mvm.DX, 0x200).Int(0x21) // write
	a.MovImm(mvm.AX, 0x3E00).Int(0x21)                                         // close
	a.Hlt()
	prog, err := a.Assemble()
	if err != nil {
		log.Fatal(err)
	}
	v.Load(prog)
	copy(v.Mem[0x100:], []byte("JOURNAL.LOG\x00"))
	copy(v.Mem[0x200:], []byte("dos|"))
	if err := v.Run(100000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mvm:   guest appended through INT 21h")

	// --- everyone sees the union ----------------------------------------
	attr, e := op.DosQueryPathInfo("/JOURNAL.LOG")
	if e != 0 {
		log.Fatalf("stat: %v", e)
	}
	h, _ = op.DosOpen("/JOURNAL.LOG", false, false)
	final := make([]byte, attr.Size)
	op.DosRead(h, final)
	op.DosClose(h)
	fmt.Printf("final /JOURNAL.LOG (%d bytes): %q\n", attr.Size, final)

	// --- the networking shared service ----------------------------------
	peer, err := netsvc.NewStack(sys.Kernel.CPU, sys.Kernel.Layout(), sys.NICs[1], "peer", netsvc.Coarse)
	if err != nil {
		log.Fatal(err)
	}
	local, err := sys.Net.Bind(1700)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := peer.Bind(1700); err != nil {
		log.Fatal(err)
	}
	if err := local.SendTo("peer", 1700, final); err != nil {
		log.Fatal(err)
	}
	peer.Pump()
	fmt.Println("net:   journal datagram delivered to the peer stack")

	fmt.Printf("\ntasks running at the end: %d\n", len(sys.Kernel.Tasks()))
}
