package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workload"
)

// seedFI1WPOS is the exact File Intensive 1 cycle count of the seed
// reproduction on the single-engine system (same pin as seedTable1).
const seedFI1WPOS = 43136087

// TestSMPObservationOff gates the SMP tentpole's compatibility promise:
// a CPUs=1 boot (the default) must be the seed system cycle for cycle —
// no complex, no dispatcher, no per-engine metric families, and the
// exact FI1 count.
func TestSMPObservationOff(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CPUs = 1
	s, err := core.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kernel.Complex() != nil {
		t.Fatal("CPUs=1 boot built a cpu.Complex; the seed path must be engine-only")
	}
	if n := s.Kernel.NCPUs(); n != 1 {
		t.Fatalf("NCPUs = %d, want 1", n)
	}
	base := s.Kernel.CPU.Counters().Cycles
	res, err := workload.Run(workload.FileIntensive1, s.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != seedFI1WPOS {
		t.Errorf("FI1 on a 1-CPU boot = %d cycles, seed = %d (SMP layer is not observation-off)",
			res.Cycles, seedFI1WPOS)
	}
	if got := s.Kernel.CPU.Counters().Cycles - base; got != seedFI1WPOS {
		t.Errorf("engine delta = %d, want %d", got, seedFI1WPOS)
	}
	// No per-engine families may exist on a single-CPU system.
	if v := s.Stats.Gauge("cpu.engines").Value(); v != 0 {
		t.Errorf("cpu.engines gauge = %d on a 1-CPU boot, want absent (0)", v)
	}
}

// TestSMPSpeedupMonotonic gates the scaling claim of E-SMP: with a
// 4-thread server pool, a buffer cache and 8 concurrent clients, FI1
// throughput must not degrade going 1 -> 2 -> 4 engines, and 4 engines
// must deliver at least 2.5x the single-engine throughput.
func TestSMPSpeedupMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("boots three full systems")
	}
	const cacheSectors = 256
	var pts []bench.SMPPoint
	for _, n := range []int{1, 2, 4} {
		pt, err := bench.SMPCell(n, 8, 4, cacheSectors, false)
		if err != nil {
			t.Fatalf("cpus=%d: %v", n, err)
		}
		t.Logf("%s", pt)
		pts = append(pts, pt)
	}
	// Placement resolves in virtual time, but concurrent bursts still
	// serialize in the order the host happens to release them, so allow
	// a hair of run-to-run noise on the monotonicity check; the 4-CPU
	// gate is strict.
	const slack = 0.98
	for i := 1; i < len(pts); i++ {
		if pts[i].OpsPerSec < pts[i-1].OpsPerSec*slack {
			t.Errorf("throughput fell from %.0f to %.0f ops/s going %d -> %d engines",
				pts[i-1].OpsPerSec, pts[i].OpsPerSec, pts[i-1].CPUs, pts[i].CPUs)
		}
	}
	if speedup := pts[2].OpsPerSec / pts[0].OpsPerSec; speedup < 2.5 {
		t.Errorf("4-engine speedup = %.2fx, want >= 2.5x", speedup)
	}
	// The dispatcher really moved work: the multi-engine cells spread
	// cycles beyond one engine and recorded migrations.
	for _, pt := range pts[1:] {
		busy := 0
		for _, c := range pt.PerEngineCycles {
			if c > 0 {
				busy++
			}
		}
		if busy < 2 {
			t.Errorf("cpus=%d: only %d engine(s) consumed cycles", pt.CPUs, busy)
		}
		if pt.Migrations == 0 {
			t.Errorf("cpus=%d: no migrations recorded under 8 concurrent clients", pt.CPUs)
		}
	}
}
