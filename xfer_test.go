package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestXferRegionZeroPerByte gates the zero-copy claim on the E-XFER
// sweep itself: a region transfer charges per page mapped and nothing
// per byte, so every payload that fits one page must cost identical
// cycles, and the large-payload slope must be a small fraction of the
// copy path's.
func TestXferRegionZeroPerByte(t *testing.T) {
	rows, err := bench.XferSweep()
	if err != nil {
		t.Fatal(err)
	}
	cell := map[int]bench.XferRow{}
	for _, r := range rows {
		cell[r.Size] = r
	}
	// 32 B and 4096 B both map exactly one page: the region cost must
	// not move by a single cycle — that difference would be a per-byte
	// charge.
	if a, b := cell[32].Region, cell[4096].Region; a != b {
		t.Errorf("region transfer cost moved with payload size within one page: %d cycles at 32 B, %d at 4096 B", a, b)
	}
	// From one page to sixteen the region path pays 15 more page maps;
	// the copy path pays 61440 more copied bytes.  The region slope must
	// be under a tenth of the copy slope or the per-byte charge leaked
	// back in.
	regionSlope := cell[65536].Region - cell[4096].Region
	copySlope := cell[65536].Copy - cell[4096].Copy
	if regionSlope*10 >= copySlope {
		t.Errorf("region slope %d cycles over 60 KiB is not <10%% of copy slope %d", regionSlope, copySlope)
	}
	// Batching amortizes the fixed crossing cost: per-op cost of an
	// 8-wide batch must be under half the one-call-per-op cost while the
	// payload is small enough for the crossing to dominate.
	for _, size := range []int{32, 256} {
		if 2*cell[size].Batched >= cell[size].Copy {
			t.Errorf("batched %d B costs %d cycles/op vs %d unbatched — crossing not amortized",
				size, cell[size].Batched, cell[size].Copy)
		}
	}
}

// TestXferFileIntensiveImproves gates the end-to-end payoff: with the
// buffer cache at 256 sectors, turning zero-copy and vectored batching
// on must not worsen either file-intensive Table 1 ratio, and must
// strictly improve FI2 (the mix with enough write-behind traffic for
// vectored flushes to matter).
func TestXferFileIntensiveImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("boots eight full systems")
	}
	fi, err := bench.XferFI(256)
	if err != nil {
		t.Fatal(err)
	}
	if fi.OnFI1 > fi.OffFI1 {
		t.Errorf("FI1 ratio regressed with features on: %.4f -> %.4f", fi.OffFI1, fi.OnFI1)
	}
	if fi.OnFI2 >= fi.OffFI2 {
		t.Errorf("FI2 ratio did not improve with features on: %.4f -> %.4f", fi.OffFI2, fi.OnFI2)
	}
}

// TestXferFeaturesOffSeedPinned is the api_redesign compatibility gate:
// a boot with ZeroCopy and BatchRPC explicitly off (the default) must
// model File Intensive 1 byte-identically to the pre-redesign pin —
// the new region-map and batch-demux kernel paths exist at fixed
// addresses but are never executed, and no layout cursor moved.
func TestXferFeaturesOffSeedPinned(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ZeroCopy = false
	cfg.BatchRPC = false
	s, err := core.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.Run(workload.FileIntensive1, s.WorkloadEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != seedFI1WPOS {
		t.Errorf("features-off FI1 = %d cycles, want the seed pin %d", res.Cycles, seedFI1WPOS)
	}
}
