// Command kprof boots Workplace OS, opens a profile window over the
// monitor server (found through the name service, spoken to over the
// system's own RPC), drives a workload inside the window, and renders the
// exact cycle-attribution profile: which code regions the cycles landed
// in and why (base issue, I-cache, D-cache, TLB, switch, stall).
//
// Usage:
//
//	kprof -format regions                 # top regions with stall breakdown
//	kprof -format servers                 # per-server/op stall breakdown
//	kprof -format kinds                   # whole-run stall-kind split
//	kprof -format folded > out.folded     # flamegraph.pl-compatible stacks
//	kprof -format json                    # raw profile
//	kprof -eprof                          # run E-PROF and print the ledger
//
// Boot flags mirror cmd/wpos: -driver, -mem, -pool, -cache, -simple-names.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kprof"
	"repro/internal/monitor"
	"repro/internal/netsvc"
	"repro/internal/workload"
)

var workloads = map[string]workload.Row{
	"file1":    workload.FileIntensive1,
	"file2":    workload.FileIntensive2,
	"gfx-low":  workload.GraphicsLow,
	"gfx-med":  workload.GraphicsMedium,
	"gfx-high": workload.GraphicsHigh,
	"pm-med":   workload.PMTaskingMedium,
	"pm-high":  workload.PMTaskingHigh,
}

func main() {
	var (
		driver = flag.String("driver", "user", "block driver model: user, kernel, ooddm")
		mem    = flag.Int("mem", 64, "installed memory in MB")
		simple = flag.Bool("simple-names", false, "also start the Release 2 simplified name service")
		pool   = flag.Int("pool", 1, "server threads per RPC server")
		cache  = flag.Int("cache", 0, "file-server buffer cache size in sectors (0 = off)")
		wl     = flag.String("workload", "file1", "traffic source: file1, file2, gfx-low, gfx-med, gfx-high, pm-med, pm-high")
		format = flag.String("format", "regions", "output: regions, servers, kinds, folded, json")
		topN   = flag.Int("top", 20, "rows to show in table formats (0 = all)")
		eprof  = flag.Bool("eprof", false, "run the E-PROF experiment instead of a workload profile")
	)
	flag.Parse()

	if *eprof {
		runEPROF()
		return
	}

	row, ok := workloads[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "kprof: unknown workload %q\n", *wl)
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.MemoryMB = *mem
	cfg.SimpleNames = *simple
	cfg.ServerPool = *pool
	cfg.CacheSectors = *cache
	switch *driver {
	case "kernel":
		cfg.Driver = core.DriverKernel
	case "ooddm":
		cfg.Driver = core.DriverOODDM
	default:
		cfg.Driver = core.DriverUser
	}
	cfg.ObjectMode = netsvc.FineGrained

	s, err := core.Boot(cfg)
	check(err)

	// The profile window is driven entirely over the system's own RPC:
	// look the monitor up in the name service, start the window, run the
	// workload, stop, fetch.
	b, err := s.Names.Lookup("/servers/monitor")
	check(err)
	viewer := s.Kernel.NewTask("kprof-cli")
	th, err := viewer.NewBoundThread("main")
	check(err)
	c, err := monitor.Connect(th, b.Task, b.Port)
	check(err)

	check(c.ProfStart())
	res, err := workload.Run(row, s.WorkloadEnv())
	check(err)
	check(c.ProfStop())
	prof, err := c.Profile()
	check(err)

	switch *format {
	case "folded":
		check(prof.WriteFolded(os.Stdout))
	case "json":
		check(prof.WriteJSON(os.Stdout))
	case "regions":
		header(prof, res)
		table("REGION", prof.ByRegion(), *topN)
	case "servers":
		header(prof, res)
		table("CONTEXT", prof.ByServer(), *topN)
	case "kinds":
		header(prof, res)
		table("KIND", prof.ByKind(), 0)
	default:
		fmt.Fprintf(os.Stderr, "kprof: unknown format %q\n", *format)
		os.Exit(2)
	}
}

// header prints the window summary: how much of the workload's modeled
// cost the profile attributed (all of it, by the exactness contract —
// minus only the cycles of the ProfStop control call itself).
func header(p kprof.Profile, res workload.Result) {
	cycles, bus, instr := p.Totals()
	fmt.Printf("kprof — %s: attributed %d cycles (%d bus, %d instr) in %d samples; workload modeled %d cycles\n\n",
		res.Row, cycles, bus, instr, len(p.Samples), res.Cycles)
}

// table renders an aggregated view with a per-kind percentage breakdown.
func table(label string, rows []kprof.Agg, topN int) {
	var total uint64
	for _, r := range rows {
		total += r.Cycles
	}
	fmt.Printf("%-28s %12s %6s  %5s %5s %5s %5s %5s %5s\n",
		label, "CYCLES", "SHARE", "base", "imiss", "dmiss", "tlb", "switch", "stall")
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.Cycles) / float64(total)
		}
		name := r.Name
		if len(name) > 28 {
			name = name[:25] + "..."
		}
		fmt.Printf("%-28s %12d %5.1f%%  ", name, r.Cycles, share)
		var pcts []string
		for kind := cpu.ProfKind(0); kind < cpu.NumProfKinds; kind++ {
			pct := 0.0
			if r.Cycles > 0 {
				pct = 100 * float64(r.ByKind[kind]) / float64(r.Cycles)
			}
			pcts = append(pcts, fmt.Sprintf("%4.0f%%", pct))
		}
		fmt.Println(strings.Join(pcts, " "))
	}
}

// runEPROF prints the E-PROF ledger: the exact decomposition of Table 2's
// trap-vs-RPC cycle gap.
func runEPROF() {
	res, err := bench.EPROF()
	check(err)
	fmt.Println("E-PROF — exact profile of one thread_self trap vs one 32-byte RPC")
	fmt.Printf("(paper Table 2: trap 970 cycles CPI 2.0, RPC 5163 cycles CPI 3.9, gap blamed on I-cache misses)\n\n")
	fmt.Printf("%-12s %10s %10s %10s   exact\n", "OP", "CYCLES", "INSTR", "BUS")
	for _, op := range []bench.OpProfile{res.Trap, res.RPC} {
		fmt.Printf("%-12s %10d %10d %10d   %v\n", op.Name,
			op.Counters.Cycles, op.Counters.Instructions, op.Counters.BusCycles, op.Exact)
	}
	fmt.Printf("\nRPC - trap gap: %d cycles, by stall kind:\n", res.GapCycles)
	for kind := cpu.ProfKind(0); kind < cpu.NumProfKinds; kind++ {
		share := 0.0
		if res.GapCycles != 0 {
			share = 100 * float64(res.GapByKind[kind]) / float64(res.GapCycles)
		}
		marker := ""
		if kind == res.Largest {
			marker = "  <- largest"
		}
		fmt.Printf("  %-6s %+7d cycles  %5.1f%%%s\n", kind, res.GapByKind[kind], share, marker)
	}
	fmt.Printf("\nI-cache share of the gap: %.1f%% — the paper's attribution, now a number.\n",
		100*res.IMissShare)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kprof:", err)
		os.Exit(1)
	}
}
