// Command wpos boots a complete Workplace OS and drives a short
// demonstration across all three personalities: an OS/2 process, a POSIX
// process and a DOS guest sharing one file server, plus the architecture
// figure and the performance-counter state at the end.
//
// Usage:
//
//	wpos [-driver user|kernel|ooddm] [-mem MB] [-simple-names] [-pool N] [-cache SECTORS] [-cpus N] [-zerocopy] [-batch]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mvm"
	"repro/internal/netsvc"
)

func main() {
	driver := flag.String("driver", "user", "block driver model: user, kernel, ooddm")
	mem := flag.Int("mem", 64, "installed memory in MB")
	simple := flag.Bool("simple-names", false, "also start the Release 2 simplified name service")
	pool := flag.Int("pool", 1, "server threads per RPC server (Release 2 multi-threaded servers when > 1)")
	cache := flag.Int("cache", 0, "file-server buffer cache size in sectors (0 = off, the seed path)")
	cpus := flag.Int("cpus", 1, "number of processing engines (SMP complex when > 1)")
	zerocopy := flag.Bool("zerocopy", false, "move page-sized file payloads by out-of-line region descriptor (zero per-byte copy)")
	batch := flag.Bool("batch", false, "vector hot-path RPC batches (readdir+stat, write-behind flush) into single crossings")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.MemoryMB = *mem
	cfg.CPUs = *cpus
	cfg.SimpleNames = *simple
	cfg.ServerPool = *pool
	cfg.CacheSectors = *cache
	cfg.ZeroCopy = *zerocopy
	cfg.BatchRPC = *batch
	switch *driver {
	case "kernel":
		cfg.Driver = core.DriverKernel
	case "ooddm":
		cfg.Driver = core.DriverOODDM
	default:
		cfg.Driver = core.DriverUser
	}
	cfg.ObjectMode = netsvc.FineGrained

	s, err := core.Boot(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boot failed:", err)
		os.Exit(1)
	}
	fmt.Println("Workplace OS booted.")
	for _, l := range s.BootLog() {
		fmt.Println("  *", l)
	}
	fmt.Println()
	fmt.Print(s.RenderFigure1())
	fmt.Println()

	// OS/2 writes a file on the FAT boot volume.
	op, err := s.OS2.CreateProcess("demo.exe")
	check(err)
	h, e := op.DosOpen("/HELLO.TXT", true, true)
	checkOS2("DosOpen", e == 0)
	_, e = op.DosWrite(h, []byte("hello from OS/2\n"))
	checkOS2("DosWrite", e == 0)
	op.DosClose(h)
	fmt.Println("os2:   wrote /HELLO.TXT through the file server and block driver")

	// POSIX reads it back.
	pp, err := s.POSIX.Spawn("cat")
	check(err)
	fd, pe := pp.Open("/hello.txt", 0)
	checkOS2("posix open", pe == 0)
	buf := make([]byte, 64)
	n, _ := pp.Read(fd, buf)
	fmt.Printf("posix: read %q (case-folded name on FAT)\n", buf[:n])
	pp.Close(fd)

	// A DOS guest prints through MVM's virtual device drivers.
	v, err := s.MVM.NewVM("hello.com", mvm.Translate)
	check(err)
	a := mvm.NewAsm()
	for _, ch := range "DOS lives\n" {
		a.MovImm(mvm.AX, 0x0200)
		a.MovImm(mvm.DX, uint16(ch))
		a.Int(0x21)
	}
	a.Hlt()
	prog, err := a.Assemble()
	check(err)
	check(v.Load(prog))
	check(v.Run(100000))
	fmt.Printf("mvm:   guest wrote %q to the console (translated, %d guest instructions)\n",
		s.Console.Contents(), v.GuestInstrs)

	// Name-service view.
	kids, err := s.Names.Search("/", "class", "")
	check(err)
	fmt.Printf("names: %d bound services: %v\n", len(kids), kids)

	c := s.Kernel.CPU.Counters()
	fmt.Printf("\ncounters after the demo: %s\n", c)

	if s.Kernel.NCPUs() > 1 {
		fmt.Printf("\nengines (%d):\n", s.Kernel.NCPUs())
		for _, st := range s.Kernel.SchedStats() {
			fmt.Printf("  e%d: %12d cycles  %6d dispatches  %4d migrations  %4d steals\n",
				st.Slot, st.Cycles, st.Dispatches, st.Migrations, st.Steals)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wpos:", err)
		os.Exit(1)
	}
}

func checkOS2(op string, ok bool) {
	if !ok {
		fmt.Fprintln(os.Stderr, "wpos:", op, "failed")
		os.Exit(1)
	}
}
