// Command benchtables regenerates every table and figure of the paper's
// evaluation from the simulated system and prints them side by side with
// the published numbers.
//
// Usage:
//
//	benchtables            # everything
//	benchtables -only 1    # Table 1 only
//	benchtables -only 2    # Table 2 only
//	benchtables -only ipc  # the IPC rework sweep
//	benchtables -only fig1 # the architecture figure
//	benchtables -only extras  # E5-E10 ablations
//	benchtables -only cache   # E-CACHE: buffer-cache size sweep
//	benchtables -only smp     # E-SMP: multiprocessor scaling curve
//	benchtables -cache 1024   # Table 1 with a 1024-sector buffer cache
//	benchtables -json results.json  # also write machine-readable records
//	benchtables -stats stats.json   # per-workload kstat metrics appendix
//	benchtables -only 1 -gate BENCH_baseline.json  # fail on ratio regressions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
)

// record is one measured number in the -json output: which table it belongs
// to, what it measures, the measured value, and the published value when the
// paper prints one (0 otherwise).
type record struct {
	Table    string  `json:"table"`
	Name     string  `json:"name"`
	Metric   string  `json:"metric"`
	Measured float64 `json:"measured"`
	Paper    float64 `json:"paper,omitempty"`
}

var records []record

func emit(table, name, metric string, measured, paper float64) {
	records = append(records, record{Table: table, Name: name, Metric: metric, Measured: measured, Paper: paper})
}

func main() {
	only := flag.String("only", "", "which artifact to regenerate: 1, 2, ipc, xfer, fig1, extras, cache, smp (default all but cache and smp)")
	cache := flag.Int("cache", 0, "file-server buffer cache size in sectors for Table 1 (0 = off, the paper's configuration)")
	jsonPath := flag.String("json", "", "also write the regenerated numbers as JSON records to this path")
	statsPath := flag.String("stats", "", "write the per-workload kstat metrics appendix as JSON to this path")
	gatePath := flag.String("gate", "", "compare Table 1 ratios against this baseline JSON and exit nonzero on a >5% regression")
	gateXferFlag := flag.Bool("gatexfer", false, "assert the E-XFER crossover cells of this run (use with -only xfer) and exit nonzero when a transfer mode stops winning where it must")
	flag.Parse()
	run := func(name string) bool { return *only == "" || *only == name }
	if run("fig1") {
		figure1()
	}
	if run("1") {
		table1(*cache)
	}
	if run("2") {
		table2()
	}
	if run("ipc") {
		ipcSweep()
	}
	if run("xfer") {
		xferSweep()
	}
	if run("extras") {
		extras()
	}
	if *only == "cache" {
		cacheSweep()
	}
	if *only == "smp" {
		smpCurve()
	}
	if *jsonPath != "" {
		writeJSON(*jsonPath)
	}
	if *statsPath != "" {
		statsAppendix(*statsPath)
	}
	if *gatePath != "" {
		gate(*gatePath)
	}
	if *gateXferFlag {
		gateXfer()
	}
}

// gateXfer asserts the E-XFER crossover structure on this run's records:
// copying must win below a page, region transfer must win from a page
// up (it charges per page mapped, never per byte), batching must
// amortize the crossing cost of small transfers, and the file-intensive
// ratios must not regress with the features on.  These are
// self-consistency cells — no baseline file, since the claim is about
// the shape of the sweep, not its absolute level.
func gateXfer() {
	cells := map[string]map[string]float64{}
	for _, r := range records {
		if r.Table != "exfer" {
			continue
		}
		if cells[r.Name] == nil {
			cells[r.Name] = map[string]float64{}
		}
		cells[r.Name][r.Metric] = r.Measured
	}
	if len(cells) == 0 {
		fail(fmt.Errorf("gatexfer: this run produced no E-XFER records (use -only xfer)"))
	}
	fmt.Println("E-XFER gate: transfer-mode crossover cells")
	fmt.Println()
	failures := 0
	check := func(ok bool, format string, a ...any) {
		status := "ok"
		if !ok {
			status = "FAILED"
			failures++
		}
		fmt.Printf("  %-7s %s\n", status, fmt.Sprintf(format, a...))
	}
	cell := func(name, metric string) float64 {
		m, ok := cells[name]
		if !ok {
			fail(fmt.Errorf("gatexfer: no %q records", name))
		}
		v, ok := m[metric]
		if !ok {
			fail(fmt.Errorf("gatexfer: no %s/%s record", name, metric))
		}
		return v
	}
	for _, size := range []int{32, 256} {
		n := fmt.Sprintf("%d bytes", size)
		check(cell(n, "copy_cycles") < cell(n, "region_cycles"),
			"copy beats region at %s (%.0f < %.0f): per-page map cost dominates small payloads", n,
			cell(n, "copy_cycles"), cell(n, "region_cycles"))
		check(cell(n, "batched_cycles") < cell(n, "copy_cycles"),
			"batching beats one-call-per-op at %s (%.0f < %.0f): crossing cost amortized", n,
			cell(n, "batched_cycles"), cell(n, "copy_cycles"))
	}
	for _, size := range []int{4096, 16384, 65536} {
		n := fmt.Sprintf("%d bytes", size)
		check(cell(n, "region_cycles") < cell(n, "copy_cycles"),
			"region beats copy at %s (%.0f < %.0f): zero per-byte cost from a page up", n,
			cell(n, "region_cycles"), cell(n, "copy_cycles"))
	}
	check(cell("fi1_cache256", "ratio_on") <= cell("fi1_cache256", "ratio_off"),
		"FI1 ratio with features on (%.4f) no worse than off (%.4f)",
		cell("fi1_cache256", "ratio_on"), cell("fi1_cache256", "ratio_off"))
	check(cell("fi2_cache256", "ratio_on") <= cell("fi2_cache256", "ratio_off"),
		"FI2 ratio with features on (%.4f) no worse than off (%.4f)",
		cell("fi2_cache256", "ratio_on"), cell("fi2_cache256", "ratio_off"))
	if failures > 0 {
		fmt.Printf("\ngatexfer: %d crossover cell(s) violated\n", failures)
		os.Exit(1)
	}
	fmt.Println("\ngatexfer: all crossover cells hold")
}

// gateTolerance is the allowed relative growth of a Table 1 ratio before
// the gate fails the run.
const gateTolerance = 0.05

// gate compares this run's Table 1 ratio records against a committed
// baseline and exits nonzero when any ratio regressed by more than the
// tolerance.  Ratios are WPOS-cycles over native-cycles, so bigger is
// worse.
func gate(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	var baseline []record
	err = json.NewDecoder(f).Decode(&baseline)
	f.Close()
	if err != nil {
		fail(fmt.Errorf("gate: %s: %w", path, err))
	}
	current := map[string]float64{}
	for _, r := range records {
		if r.Table == "table1" && r.Metric == "ratio" {
			current[r.Name] = r.Measured
		}
	}
	if len(current) == 0 {
		fail(fmt.Errorf("gate: this run produced no Table 1 ratios (use -only 1 or the default sections)"))
	}
	fmt.Printf("Benchmark gate: Table 1 ratios vs %s (tolerance %.0f%%)\n\n", path, 100*gateTolerance)
	failures := 0
	for _, b := range baseline {
		if b.Table != "table1" || b.Metric != "ratio" {
			continue
		}
		got, ok := current[b.Name]
		if !ok {
			fmt.Printf("  MISSING %-19s baseline %.3f, not measured this run\n", b.Name, b.Measured)
			failures++
			continue
		}
		status := "ok"
		if got > b.Measured*(1+gateTolerance) {
			status = "REGRESSED"
			failures++
		}
		fmt.Printf("  %-9s %-19s baseline %.3f measured %.3f (%+.1f%%)\n",
			status, b.Name, b.Measured, got, 100*(got/b.Measured-1))
	}
	if failures > 0 {
		fmt.Printf("\ngate: %d ratio(s) regressed beyond %.0f%%\n", failures, 100*gateTolerance)
		os.Exit(1)
	}
	fmt.Println("\ngate: all ratios within tolerance")
}

// statsAppendix reruns the Table 1 workloads with the metrics fabric and
// writes each one's kstat delta to path, printing a one-line summary per
// workload.
func statsAppendix(path string) {
	rows, err := bench.Table1Stats()
	if err != nil {
		fail(err)
	}
	fmt.Println("Metrics appendix: per-workload kstat deltas (written to", path+")")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-19s rpc=%d kernel-entries=%d vfs.read=%d vfs.write=%d fs-calls=%d drv-calls=%d\n",
			r.Row,
			r.Stats.Counters["mach.rpc.calls"],
			r.Stats.Counters["mach.kernel.entries"],
			r.Stats.Counters["vfs.ops.read"],
			r.Stats.Counters["vfs.ops.write"],
			r.Stats.Counters["mach.rpc.to.fileserver.calls"],
			r.Stats.Counters["mach.rpc.to.blockdrv.calls"])
	}
	fmt.Println()
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func writeJSON(path string) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}

func figure1() {
	s, err := core.Boot(core.DefaultConfig())
	if err != nil {
		fail(err)
	}
	fmt.Println("Figure 1: The IBM Microkernel and Workplace OS (as booted)")
	fmt.Println()
	fmt.Print(s.RenderFigure1())
	fmt.Println()
	fmt.Println("boot transcript:")
	for _, l := range s.BootLog() {
		fmt.Println("  *", l)
	}
	fmt.Println()
}

func table1(cacheSectors int) {
	rows, err := bench.Table1Cache(cacheSectors)
	if err != nil {
		fail(err)
	}
	fmt.Println("Table 1: OS/2 Performance Comparisons")
	if cacheSectors > 0 {
		fmt.Printf("(WPOS OS/2 with a %d-sector unified buffer cache vs native OS/2 on 16 MB monolithic kernel)\n", cacheSectors)
	} else {
		fmt.Println("(WPOS OS/2 on 64 MB multi-server stack vs native OS/2 on 16 MB monolithic kernel)")
	}
	fmt.Println()
	fmt.Printf("%-19s %-24s %12s %14s %8s %8s\n",
		"Test", "Application Content", "WPOS cycles", "native cycles", "ratio", "paper")
	for _, r := range rows {
		fmt.Printf("%-19s %-24s %12d %14d %8.2f %8.2f\n",
			r.Row, r.Content, r.WPOS, r.Native, r.Ratio, r.Paper)
		emit("table1", string(r.Row), "wpos_cycles", float64(r.WPOS), 0)
		emit("table1", string(r.Row), "native_cycles", float64(r.Native), 0)
		emit("table1", string(r.Row), "ratio", r.Ratio, r.Paper)
	}
	m, p := bench.Overall(rows)
	fmt.Printf("%-19s %-24s %12s %14s %8.2f %8.2f\n", "Overall", "", "", "", m, p)
	emit("table1", "Overall", "ratio", m, p)
	fmt.Println()
}

func table2() {
	t, err := bench.Table2()
	if err != nil {
		fail(err)
	}
	pp := bench.PaperTable2
	gi, gc, gb, gcpi := t.Ratios()
	pi, pc, pb, pcpi := pp.Ratios()
	fmt.Println("Table 2: Trap Versus RPC (thread_self vs 32-byte RPC)")
	fmt.Println()
	fmt.Printf("%-13s %12s %12s %8s | %10s %10s %8s\n",
		"", "thread_self", "32-byte RPC", "ratio", "paper trap", "paper RPC", "paper")
	row := func(name string, a, b, ra, pa, pb2, pr float64, f string) {
		fmt.Printf("%-13s %12s %12s %8.2f | %10s %10s %8.2f\n",
			name, fmt.Sprintf(f, a), fmt.Sprintf(f, b), ra,
			fmt.Sprintf(f, pa), fmt.Sprintf(f, pb2), pr)
	}
	row("Instructions", t.TrapInstr, t.RPCInstr, gi, pp.TrapInstr, pp.RPCInstr, pi, "%.0f")
	row("Cycles", t.TrapCycles, t.RPCCycles, gc, pp.TrapCycles, pp.RPCCycles, pc, "%.0f")
	row("Bus Cycles", t.TrapBus, t.RPCBus, gb, pp.TrapBus, pp.RPCBus, pb, "%.0f")
	row("CPI", t.TrapCPI, t.RPCCPI, gcpi, pp.TrapCPI, pp.RPCCPI, pcpi, "%.2f")
	emit("table2", "thread_self", "instructions", t.TrapInstr, pp.TrapInstr)
	emit("table2", "thread_self", "cycles", t.TrapCycles, pp.TrapCycles)
	emit("table2", "thread_self", "bus_cycles", t.TrapBus, pp.TrapBus)
	emit("table2", "thread_self", "cpi", t.TrapCPI, pp.TrapCPI)
	emit("table2", "rpc_32byte", "instructions", t.RPCInstr, pp.RPCInstr)
	emit("table2", "rpc_32byte", "cycles", t.RPCCycles, pp.RPCCycles)
	emit("table2", "rpc_32byte", "bus_cycles", t.RPCBus, pp.RPCBus)
	emit("table2", "rpc_32byte", "cpi", t.RPCCPI, pp.RPCCPI)
	fmt.Println()
	fmt.Println(bench.TrapVsRPCNote(t))
	fmt.Println()
}

func cacheSweep() {
	sizes := []int{0, 64, 256, 1024, 4096}
	pts, err := bench.CacheSweep(sizes)
	if err != nil {
		fail(err)
	}
	fmt.Println("E-CACHE: unified buffer cache, file-intensive Table 1 ratios by cache size")
	fmt.Println("(0 sectors = the seed's direct-to-driver path; native baseline is never cached)")
	fmt.Println()
	fmt.Printf("%14s %18s %18s\n", "cache sectors", "File Intensive 1", "File Intensive 2")
	for _, p := range pts {
		fmt.Printf("%14d %18.2f %18.2f\n", p.Sectors, p.FI1, p.FI2)
		emit("ecache", fmt.Sprintf("%d sectors", p.Sectors), "fi1_ratio", p.FI1, 0)
		emit("ecache", fmt.Sprintf("%d sectors", p.Sectors), "fi2_ratio", p.FI2, 0)
	}
	fmt.Println()
}

func smpCurve() {
	res, err := bench.ESMP()
	if err != nil {
		fail(err)
	}
	fmt.Println("E-SMP: multiprocessor scaling of the File Intensive 1 mix")
	fmt.Println("(8 concurrent OS/2 clients, 4-thread file-server pool, buffer cache on;")
	fmt.Println(" elapsed = virtual-time makespan of the burst schedule)")
	fmt.Println()
	row := func(p bench.SMPPoint) {
		fmt.Printf("%6d %10d %16d %12.0f %8.2fx %11d %8d %12d\n",
			p.CPUs, p.Ops, p.ElapsedCycles, p.OpsPerSec, p.Speedup,
			p.Migrations, p.Steals, p.CoherenceCycles)
	}
	fmt.Printf("%6s %10s %16s %12s %9s %11s %8s %12s\n",
		"cpus", "ops", "elapsed cycles", "ops/sec", "speedup", "migrations", "steals", "coher cycles")
	for _, p := range res.Curve {
		row(p)
		name := fmt.Sprintf("%d cpus", p.CPUs)
		emit("esmp", name, "ops_per_sec", p.OpsPerSec, 0)
		emit("esmp", name, "speedup", p.Speedup, 0)
		emit("esmp", name, "migrations", float64(p.Migrations), 0)
	}
	if p := res.Raw; p.CPUs > 0 {
		fmt.Printf("\nraw driver path (cache off, %d cpus): every operation chains through the\nsingle-threaded block driver and its device time:\n", p.CPUs)
		row(p)
		emit("esmp", "raw-driver", "ops_per_sec", p.OpsPerSec, 0)
		emit("esmp", "raw-driver", "speedup", p.Speedup, 0)
	}
	if p := res.Pinned; p.CPUs > 0 {
		fmt.Printf("\ndriver-pinned (cache on, block driver confined to one processor of %d\nvia processor_assign/task_assign):\n", p.CPUs)
		row(p)
		emit("esmp", "driver-pinned", "ops_per_sec", p.OpsPerSec, 0)
		emit("esmp", "driver-pinned", "speedup", p.Speedup, 0)
	}
	fmt.Println()
	fmt.Println("The curve flattens past the pool size: beyond 4 engines the file server's")
	fmt.Println("4 worker threads are the bottleneck, not the CPU count — and the raw")
	fmt.Println("driver path shows the serialized-driver ceiling no CPU count lifts.")
	fmt.Println()
}

func ipcSweep() {
	pts, err := bench.IPCSweep()
	if err != nil {
		fail(err)
	}
	fmt.Println("IPC rework: classic mach_msg vs reworked RPC round trip")
	fmt.Println("(the paper reports a 2x-10x improvement depending on bytes transmitted)")
	fmt.Println()
	fmt.Printf("%10s %14s %14s %10s\n", "bytes", "old (cycles)", "new (cycles)", "speedup")
	for _, p := range pts {
		fmt.Printf("%10d %14d %14d %9.2fx\n", p.Size, p.OldCycles, p.NewCycles, p.Speedup)
		emit("ipc", fmt.Sprintf("%d bytes", p.Size), "speedup", p.Speedup, 0)
	}
	fmt.Println()
}

func xferSweep() {
	rows, err := bench.XferSweep()
	if err != nil {
		fail(err)
	}
	fmt.Println("E-XFER: bulk-transfer modes, cycles per transferred payload")
	fmt.Println("(copy = payload copied inline/out-of-line; region = mapped by shared-memory")
	fmt.Printf(" descriptor, per-page map cost, zero per-byte copy; batched = %d sub-requests\n", bench.XferBatch)
	fmt.Println(" per carrier crossing, cycles shown per sub-request)")
	fmt.Println()
	fmt.Printf("%10s %14s %14s %14s\n", "bytes", "copy (cyc)", "region (cyc)", "batched (cyc)")
	for _, r := range rows {
		fmt.Printf("%10d %14d %14d %14d\n", r.Size, r.Copy, r.Region, r.Batched)
		name := fmt.Sprintf("%d bytes", r.Size)
		emit("exfer", name, "copy_cycles", float64(r.Copy), 0)
		emit("exfer", name, "region_cycles", float64(r.Region), 0)
		emit("exfer", name, "batched_cycles", float64(r.Batched), 0)
	}
	fmt.Println()
	fi, err := bench.XferFI(256)
	if err != nil {
		fail(err)
	}
	fmt.Printf("file-intensive ratios at a %d-sector cache, features off -> on:\n", fi.CacheSectors)
	fmt.Printf("  FI1 %.4f -> %.4f   FI2 %.4f -> %.4f\n", fi.OffFI1, fi.OnFI1, fi.OffFI2, fi.OnFI2)
	emit("exfer", "fi1_cache256", "ratio_off", fi.OffFI1, 0)
	emit("exfer", "fi1_cache256", "ratio_on", fi.OnFI1, 0)
	emit("exfer", "fi2_cache256", "ratio_off", fi.OffFI2, 0)
	emit("exfer", "fi2_cache256", "ratio_on", fi.OnFI2, 0)
	fmt.Println()
}

func extras() {
	fmt.Println("Supporting experiments (claims argued in the evaluation text)")
	fmt.Println()

	ns, err := bench.NameServices()
	if err != nil {
		fail(err)
	}
	fmt.Printf("E5  name service:       X.500-style %d cycles/lookup vs simplified %d  (%.1fx)\n",
		ns.FullCycles, ns.SimpleCycles, ns.Ratio)
	emit("extras", "E5 name service", "ratio", ns.Ratio, 0)

	obj, err := bench.Objects()
	if err != nil {
		fail(err)
	}
	fmt.Printf("E6  object systems:     fine-grained %d cycles/datagram vs MK++-style %d  (%.2fx, %d B class metadata)\n",
		obj.FineCycles, obj.CoarseCycles, obj.Ratio, obj.MetadataBytes)
	emit("extras", "E6 object systems", "ratio", obj.Ratio, 0)

	mem, err := bench.MemFootprint()
	if err != nil {
		fail(err)
	}
	fmt.Printf("E7  two memory managers: %d allocations, %d B requested -> %d B resident (%.1fx) + %d B OS/2 metadata over %d kernel map entries\n",
		mem.Allocations, mem.RequestedBytes, mem.ResidentBytes, mem.Overhead, mem.MetadataBytes, mem.MapEntries)

	fss, err := bench.FSPersonality()
	if err != nil {
		fail(err)
	}
	fmt.Printf("E8  semantic union:     ")
	for _, r := range fss {
		fmt.Printf("[%s longnames=%v eas=%v casesens=%v] ", r.FS, r.LongNameOK, r.EAOK, r.CaseSensitive)
	}
	fmt.Println()

	drv, err := bench.DriverModels()
	if err != nil {
		fail(err)
	}
	fmt.Printf("E9  driver models:      ")
	for _, r := range drv {
		fmt.Printf("[%s %d cycles/op] ", r.Model, r.Cycles)
		emit("extras", "E9 "+r.Model, "cycles_per_op", float64(r.Cycles), 0)
	}
	fmt.Println()

	tr, err := bench.MVMTranslator()
	if err != nil {
		fail(err)
	}
	fmt.Printf("E10 MVM translator:     interpreted %d cycles vs translated %d (cold %d); hot speedup %.1fx\n",
		tr.InterpCycles, tr.HotTransCycles, tr.ColdTransCycles, tr.Speedup)
	fmt.Println()
}
