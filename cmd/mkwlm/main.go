// Command mkwlm builds and inspects WLM load modules, the image format of
// the Microkernel Services loader.
//
// Usage:
//
//	mkwlm build -o app.wlm -name app -kind program -entry 16 \
//	      -text 4096 -data 512 -bss 8192 -export main:0 -import libc:printf
//	mkwlm show app.wlm
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/loader"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "show":
		show(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mkwlm build|show ...")
	os.Exit(2)
}

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(s string) error { *l = append(*l, s); return nil }

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "out.wlm", "output file")
	name := fs.String("name", "module", "module name")
	kind := fs.String("kind", "program", "program or library")
	entry := fs.Uint("entry", 0, "entry offset in text")
	text := fs.Uint("text", 256, "text size in bytes")
	data := fs.Uint("data", 0, "data size in bytes")
	bss := fs.Uint("bss", 0, "bss size in bytes")
	var exports, imports listFlag
	fs.Var(&exports, "export", "export as name:offset (repeatable)")
	fs.Var(&imports, "import", "import as library:symbol (repeatable)")
	fs.Parse(args)

	img := &loader.Image{
		Name:    *name,
		Entry:   uint32(*entry),
		Text:    make([]byte, *text),
		Data:    make([]byte, *data),
		BSSSize: uint32(*bss),
	}
	for i := range img.Text {
		img.Text[i] = 0x90
	}
	switch *kind {
	case "program":
		img.Kind = loader.KindProgram
	case "library":
		img.Kind = loader.KindLibrary
	default:
		fmt.Fprintln(os.Stderr, "mkwlm: kind must be program or library")
		os.Exit(2)
	}
	for _, e := range exports {
		parts := strings.SplitN(e, ":", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "mkwlm: bad export", e)
			os.Exit(2)
		}
		off, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mkwlm: bad export offset:", err)
			os.Exit(2)
		}
		img.Exports = append(img.Exports, loader.Symbol{Name: parts[0], Offset: uint32(off)})
	}
	for _, im := range imports {
		parts := strings.SplitN(im, ":", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "mkwlm: bad import", im)
			os.Exit(2)
		}
		img.Imports = append(img.Imports, loader.Import{Library: parts[0], Symbol: parts[1]})
	}
	if err := os.WriteFile(*out, loader.Encode(img), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mkwlm:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %s\n", *out, img)
}

func show(args []string) {
	if len(args) != 1 {
		usage()
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkwlm:", err)
		os.Exit(1)
	}
	img, err := loader.Decode(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkwlm:", err)
		os.Exit(1)
	}
	fmt.Println(img)
	if len(img.Exports) > 0 {
		fmt.Println("exports:")
		for _, s := range img.Exports {
			fmt.Printf("  %s @ +%d\n", s.Name, s.Offset)
		}
	}
	if len(img.Imports) > 0 {
		fmt.Println("imports:")
		for _, im := range img.Imports {
			fmt.Printf("  %s from %s\n", im.Symbol, im.Library)
		}
	}
}
