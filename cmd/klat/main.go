// Command klat boots Workplace OS, drives a workload, fetches the
// tail-latency dump over the monitor server (found through the name
// service, spoken to over the system's own RPC), and renders it: the
// per-(server, op) latency histograms with their queue/service/cross
// decompositions, then hop-by-hop waterfalls of the slowest retained
// exemplars — who the p99 request waited on, hop by hop.
//
// It also works offline on saved dumps:
//
//	klat                                  # boot, run file1, histograms + waterfalls
//	klat -cpus 4 -pool 4 -cache 64        # a contended cell
//	klat -top 3                           # three exemplar waterfalls per family
//	klat -format json > tail.json         # raw dump
//	klat -read tail.json                  # render a saved dump
//
// Boot flags mirror cmd/wpos: -driver, -mem, -pool, -cache, -cpus.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/klat"
	"repro/internal/monitor"
	"repro/internal/netsvc"
	"repro/internal/workload"
)

var workloads = map[string]workload.Row{
	"file1":    workload.FileIntensive1,
	"file2":    workload.FileIntensive2,
	"gfx-low":  workload.GraphicsLow,
	"gfx-med":  workload.GraphicsMedium,
	"gfx-high": workload.GraphicsHigh,
	"pm-med":   workload.PMTaskingMedium,
	"pm-high":  workload.PMTaskingHigh,
}

func main() {
	var (
		driver = flag.String("driver", "user", "block driver model: user, kernel, ooddm")
		mem    = flag.Int("mem", 64, "installed memory in MB")
		pool   = flag.Int("pool", 1, "server threads per RPC server")
		cache  = flag.Int("cache", 0, "file-server buffer cache size in sectors (0 = off)")
		cpus   = flag.Int("cpus", 1, "processing engines")
		wl     = flag.String("workload", "file1", "traffic source: file1, file2, gfx-low, gfx-med, gfx-high, pm-med, pm-high")
		top    = flag.Int("top", 1, "exemplar waterfalls to show per (server, op) family")
		format = flag.String("format", "text", "output: text, json")
		read   = flag.String("read", "", "render a saved dump file instead of booting")
	)
	flag.Parse()

	if *read != "" {
		f, err := os.Open(*read)
		check(err)
		d, err := klat.ReadDump(f)
		f.Close()
		check(err)
		render(d, *format, *top)
		return
	}

	row, ok := workloads[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "klat: unknown workload %q\n", *wl)
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.MemoryMB = *mem
	cfg.ServerPool = *pool
	cfg.CacheSectors = *cache
	cfg.CPUs = *cpus
	switch *driver {
	case "kernel":
		cfg.Driver = core.DriverKernel
	case "ooddm":
		cfg.Driver = core.DriverOODDM
	default:
		cfg.Driver = core.DriverUser
	}
	cfg.ObjectMode = netsvc.FineGrained

	s, err := core.Boot(cfg)
	check(err)

	_, err = workload.Run(row, s.WorkloadEnv())
	check(err)

	// The dump travels the same path a live operator query would:
	// name-service lookup, monitor RPC, JSON in the reply's out-of-line
	// region.
	b, err := s.Names.Lookup("/servers/monitor")
	check(err)
	viewer := s.Kernel.NewTask("klat-cli")
	th, err := viewer.NewBoundThread("main")
	check(err)
	c, err := monitor.Connect(th, b.Task, b.Port)
	check(err)
	d, err := c.TailDump()
	check(err)
	render(d, *format, *top)
}

func render(d *klat.Dump, format string, top int) {
	switch format {
	case "json":
		check(d.WriteJSON(os.Stdout))
	case "text":
		check(d.WriteText(os.Stdout))
		for i := range d.Families {
			f := &d.Families[i]
			for j := 0; j < len(f.Exemplars) && j < top; j++ {
				fmt.Println()
				f.Exemplars[j].WriteExemplar(os.Stdout)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "klat: unknown format %q\n", format)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "klat:", err)
		os.Exit(1)
	}
}
