// Command nsquery boots Workplace OS and explores its name space: the
// single rooted tree the personality-neutral servers bind into, with
// X.500-style attributes and search.
//
// Usage:
//
//	nsquery                      # list the tree
//	nsquery -search class=personality
//	nsquery -lookup /servers/files
//	nsquery -bench               # full vs simplified lookup cost
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	search := flag.String("search", "", "attribute search as key=value")
	lookup := flag.String("lookup", "", "resolve one path")
	doBench := flag.Bool("bench", false, "compare full and simplified lookup cost")
	flag.Parse()

	if *doBench {
		r, err := bench.NameServices()
		if err != nil {
			fail(err)
		}
		fmt.Printf("X.500-style: %d cycles/lookup\nsimplified:  %d cycles/lookup\nratio:       %.1fx\n",
			r.FullCycles, r.SimpleCycles, r.Ratio)
		return
	}

	s, err := core.Boot(core.DefaultConfig())
	if err != nil {
		fail(err)
	}
	switch {
	case *lookup != "":
		b, err := s.Names.Lookup(*lookup)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s ->", *lookup)
		if b.Task != nil {
			fmt.Printf(" %s", b.Task)
		}
		for _, a := range b.Attrs {
			fmt.Printf(" %s=%s", a.Key, a.Value)
		}
		fmt.Println()
	case *search != "":
		kv := strings.SplitN(*search, "=", 2)
		value := ""
		if len(kv) == 2 {
			value = kv[1]
		}
		hits, err := s.Names.Search("/", kv[0], value)
		if err != nil {
			fail(err)
		}
		for _, h := range hits {
			fmt.Println(h)
		}
	default:
		var walk func(path string, depth int)
		walk = func(path string, depth int) {
			kids, err := s.Names.List(path)
			if err != nil {
				return
			}
			for _, k := range kids {
				child := path + "/" + k
				if path == "/" {
					child = "/" + k
				}
				fmt.Printf("%s%s\n", strings.Repeat("  ", depth), k)
				walk(child, depth+1)
			}
		}
		fmt.Println("/")
		walk("/", 1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nsquery:", err)
	os.Exit(1)
}
