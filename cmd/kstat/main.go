// Command kstat boots Workplace OS, drives a workload, and renders the
// system's metrics fabric — queried from the monitor server over the
// system's own RPC, found through the name service like any other shared
// service.
//
// Usage:
//
//	kstat -format text                      # one snapshot, human-readable
//	kstat -format json                      # one snapshot, JSON
//	kstat -format prom                      # Prometheus exposition
//	kstat -format top -iters 5              # live top-style view
//	kstat -family mach.rpc.                 # filter to one metric family
//	kstat -workload none                    # just the booted system
//
// Boot flags mirror cmd/wpos: -driver, -mem, -pool, -simple-names.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kstat"
	"repro/internal/monitor"
	"repro/internal/netsvc"
	"repro/internal/workload"
)

var workloads = map[string]workload.Row{
	"file1":    workload.FileIntensive1,
	"file2":    workload.FileIntensive2,
	"gfx-low":  workload.GraphicsLow,
	"gfx-med":  workload.GraphicsMedium,
	"gfx-high": workload.GraphicsHigh,
	"pm-med":   workload.PMTaskingMedium,
	"pm-high":  workload.PMTaskingHigh,
}

func main() {
	var (
		driver   = flag.String("driver", "user", "block driver model: user, kernel, ooddm")
		mem      = flag.Int("mem", 64, "installed memory in MB")
		simple   = flag.Bool("simple-names", false, "also start the Release 2 simplified name service")
		pool     = flag.Int("pool", 1, "server threads per RPC server")
		cache    = flag.Int("cache", 0, "file-server buffer cache size in sectors (0 = off)")
		cpus     = flag.Int("cpus", 1, "number of processing engines (SMP complex when > 1)")
		clients  = flag.Int("clients", 1, "concurrent copies of the workload (exercises the SMP dispatcher)")
		wl       = flag.String("workload", "file1", "traffic source: file1, file2, gfx-low, gfx-med, gfx-high, pm-med, pm-high, none")
		format   = flag.String("format", "text", "output: text, json, prom, top")
		family   = flag.String("family", "", "restrict output to metrics with this name prefix")
		iters    = flag.Int("iters", 5, "top mode: workload iterations (one frame each)")
		interval = flag.Duration("interval", 500*time.Millisecond, "top mode: delay between frames")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.MemoryMB = *mem
	cfg.CPUs = *cpus
	cfg.SimpleNames = *simple
	cfg.ServerPool = *pool
	cfg.CacheSectors = *cache
	switch *driver {
	case "kernel":
		cfg.Driver = core.DriverKernel
	case "ooddm":
		cfg.Driver = core.DriverOODDM
	default:
		cfg.Driver = core.DriverUser
	}
	cfg.ObjectMode = netsvc.FineGrained

	row, haveRow := workloads[*wl]
	if !haveRow && *wl != "none" {
		fmt.Fprintf(os.Stderr, "kstat: unknown workload %q\n", *wl)
		flag.Usage()
		os.Exit(2)
	}

	s, err := core.Boot(cfg)
	check(err)

	// Find the monitor through the name service and connect over RPC —
	// the observability plane uses the same shared-service plumbing it
	// observes.
	b, err := s.Names.Lookup("/servers/monitor")
	check(err)
	viewer := s.Kernel.NewTask("kstat-cli")
	th, err := viewer.NewBoundThread("main")
	check(err)
	c, err := monitor.Connect(th, b.Task, b.Port)
	check(err)

	if *format == "top" {
		if !haveRow {
			fmt.Fprintln(os.Stderr, "kstat: top mode needs a workload to drive traffic")
			os.Exit(2)
		}
		top(s, c, row, *iters, *interval)
		return
	}

	if haveRow {
		if *clients > 1 {
			// Concurrent copies: each goroutine runs the full workload
			// against its own processes; on an SMP boot the dispatcher
			// spreads the resulting RPC bursts across the engines.
			var wg sync.WaitGroup
			errs := make(chan error, *clients)
			for i := 0; i < *clients; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := workload.Run(row, s.WorkloadEnv()); err != nil {
						errs <- err
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				check(err)
			}
		} else {
			_, err = workload.Run(row, s.WorkloadEnv())
			check(err)
		}
	}
	var snap kstat.Snapshot
	if *family != "" {
		snap, err = c.Family(*family)
	} else {
		snap, _, err = c.Snapshot()
	}
	check(err)
	switch *format {
	case "text":
		check(kstat.WriteText(os.Stdout, snap))
	case "json":
		check(kstat.WriteJSON(os.Stdout, snap))
	case "prom":
		check(kstat.WriteProm(os.Stdout, snap))
	default:
		fmt.Fprintf(os.Stderr, "kstat: unknown format %q\n", *format)
		os.Exit(2)
	}
}

// top renders a live view: each frame runs the workload once, polls the
// monitor for the delta since the previous frame, and redraws.
func top(s *core.System, c *monitor.Client, row workload.Row, iters int, interval time.Duration) {
	_, baseline, err := c.Snapshot()
	check(err)
	// Per-engine cycle gauges are absolute; utilization needs the
	// frame-to-frame delta, kept here across frames.
	prevCyc := map[int]int64{}
	for i := 0; i < iters; i++ {
		start := time.Now()
		res, err := workload.Run(row, s.WorkloadEnv())
		check(err)
		d, next, err := c.DeltaSince(baseline)
		check(err)
		baseline = next
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		renderFrame(d, res, i+1, iters, time.Since(start), prevCyc)
		if i < iters-1 {
			time.Sleep(interval)
		}
	}
}

func renderFrame(d kstat.Snapshot, res workload.Result, frame, iters int, wall time.Duration, prevCyc map[int]int64) {
	fmt.Printf("kstat top — %s  frame %d/%d  (%d modeled cycles, %v wall)\n\n",
		res.Row, frame, iters, res.Cycles, wall.Round(time.Millisecond))

	calls := d.Counters["mach.rpc.calls"]
	fmt.Printf("RPC       %8d calls  %6d errors  %10d B in  %10d B out  kernel entries %d\n",
		calls, d.Counters["mach.rpc.errors"],
		d.Counters["mach.rpc.bytes_in"], d.Counters["mach.rpc.bytes_out"],
		d.Counters["mach.kernel.entries"])
	fmt.Printf("fastpath  %8d batched sub-calls  %10d B OOL-mapped\n",
		d.Counters["mach.rpc.batched"], d.Counters["mach.ool.bytes_mapped"])
	if h, ok := d.Histograms["mach.rpc.latency_cycles"]; ok && h.Count > 0 {
		fmt.Printf("latency   p50=%d  p99=%d  max=%d cycles  (n=%d, mean=%.0f)\n",
			h.Quantile(0.5), h.Quantile(0.99), h.Max(), h.Count, h.Mean())
	}

	// Per-server call split, busiest first.
	type srvRow struct {
		name  string
		calls uint64
	}
	var srvs []srvRow
	for name, v := range d.Counters {
		if rest, ok := strings.CutPrefix(name, "mach.rpc.to."); ok {
			srvs = append(srvs, srvRow{strings.TrimSuffix(rest, ".calls"), v})
		}
	}
	sort.Slice(srvs, func(i, j int) bool {
		if srvs[i].calls != srvs[j].calls {
			return srvs[i].calls > srvs[j].calls
		}
		return srvs[i].name < srvs[j].name
	})
	if len(srvs) > 0 {
		fmt.Printf("\n%-16s %10s %8s\n", "SERVER", "CALLS", "SHARE")
		for _, r := range srvs {
			share := 0.0
			if calls > 0 {
				share = 100 * float64(r.calls) / float64(calls)
			}
			fmt.Printf("%-16s %10d %7.1f%%\n", r.name, r.calls, share)
		}
	}

	// Engines: per-CPU share of the frame's modeled cycles plus dispatch
	// traffic — present only on SMP boots (cpu.engines gauge).
	if n, ok := d.Gauges["cpu.engines"]; ok && n > 0 {
		deltas := make([]int64, n)
		var total int64
		for i := int64(0); i < n; i++ {
			cur := d.Gauges[fmt.Sprintf("cpu.e%d.cycles", i)]
			deltas[i] = cur - prevCyc[int(i)]
			prevCyc[int(i)] = cur
			total += deltas[i]
		}
		fmt.Printf("\n%-8s %14s %8s %6s %10s %10s %8s\n",
			"ENGINE", "CYCLES", "UTIL", "RUNQ", "DISPATCH", "MIGRATE", "STEAL")
		for i := int64(0); i < n; i++ {
			util := 0.0
			if total > 0 {
				util = 100 * float64(deltas[i]) / float64(total)
			}
			fmt.Printf("e%-7d %14d %7.1f%% %6d %10d %10d %8d\n", i, deltas[i], util,
				d.Gauges[fmt.Sprintf("cpu.e%d.runq", i)],
				d.Counters[fmt.Sprintf("cpu.e%d.dispatches", i)],
				d.Counters[fmt.Sprintf("cpu.e%d.migrations", i)],
				d.Counters[fmt.Sprintf("cpu.e%d.steals", i)])
		}
	}

	// Server pools: current occupancy (gauges) and ops this frame.
	var pools []string
	for name := range d.Gauges {
		if rest, ok := strings.CutPrefix(name, "mach.pool."); ok {
			if p, ok := strings.CutSuffix(rest, ".workers"); ok {
				pools = append(pools, p)
			}
		}
	}
	sort.Strings(pools)
	if len(pools) > 0 {
		fmt.Printf("\n%-24s %8s %8s %10s\n", "POOL", "BUSY", "WORKERS", "OPS")
		for _, p := range pools {
			fmt.Printf("%-24s %8d %8d %10d\n", p,
				d.Gauges["mach.pool."+p+".busy"],
				d.Gauges["mach.pool."+p+".workers"],
				d.Counters["mach.pool."+p+".ops"])
		}
	}

	// Buffer cache: hit ratio plus the dirty-sector level, keyed on the
	// bcache.dirty gauge the cache pre-registers at construction.
	if dirty, ok := d.Gauges["bcache.dirty"]; ok {
		hits, misses := d.Counters["bcache.hits"], d.Counters["bcache.misses"]
		ratio := 0.0
		if hits+misses > 0 {
			ratio = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Printf("\n%-8s %8d hits %8d misses  %5.1f%% hit  ra=%d wb=%d  bcache_dirty=%d\n",
			"bcache", hits, misses, ratio,
			d.Counters["bcache.readahead"], d.Counters["bcache.writeback"], dirty)
	}

	// Subsystem one-liners, only when the frame touched them.
	sub := []struct{ label, a, b string }{
		{"vfs", "vfs.ops.read", "vfs.ops.write"},
		{"pager", "pager.pageins", "pager.pageouts"},
		{"netsvc", "netsvc.sent", "netsvc.delivered"},
		{"ksync", "ksync.kernel_ops", "ksync.user_ops"},
	}
	fmt.Println()
	for _, r := range sub {
		if d.Counters[r.a]+d.Counters[r.b] > 0 {
			fmt.Printf("%-8s %s=%d %s=%d\n", r.label, r.a, d.Counters[r.a], r.b, d.Counters[r.b])
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kstat:", err)
		os.Exit(1)
	}
}
