// Command ktrace boots Workplace OS, runs one Table 1 workload with kernel
// event tracing attached, and dumps the trace:
//
//	ktrace -workload file1 -format chrome -o trace.json   # chrome://tracing
//	ktrace -workload file1 -format summary                # per-subsystem cycles
//	ktrace -workload file1 -format tree -trees 3          # causal trees
//	ktrace -workload file1 -format attr                   # E-ATTR gap attribution
//
// Tracing is observation-only: the traced run consumes exactly the cycles
// an untraced run would.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ktrace"
	"repro/internal/workload"
)

var workloads = map[string]workload.Row{
	"file1":    workload.FileIntensive1,
	"file2":    workload.FileIntensive2,
	"gfx-low":  workload.GraphicsLow,
	"gfx-med":  workload.GraphicsMedium,
	"gfx-high": workload.GraphicsHigh,
	"pm-med":   workload.PMTaskingMedium,
	"pm-high":  workload.PMTaskingHigh,
}

func main() {
	var (
		wl     = flag.String("workload", "file1", "workload: file1, file2, gfx-low, gfx-med, gfx-high, pm-med, pm-high")
		format = flag.String("format", "summary", "output: chrome, summary, tree, attr")
		out    = flag.String("o", "", "output file (default stdout)")
		ring   = flag.Int("ring", ktrace.DefaultRingSize, "trace ring capacity in events")
		trees  = flag.Int("trees", 5, "causal trees to print in tree format")
	)
	flag.Parse()

	row, ok := workloads[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "ktrace: unknown workload %q\n", *wl)
		flag.Usage()
		os.Exit(2)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *format == "attr" {
		res, err := bench.Attribution(row)
		if err != nil {
			fatal(err)
		}
		printAttribution(w, res)
		return
	}

	sys, err := core.Boot(core.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	tr := ktrace.AttachSized(sys.Kernel.CPU, *ring)
	res, err := workload.Run(row, sys.WorkloadEnv())
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "chrome":
		// Buffer the per-event stream: a full ring is hundreds of
		// thousands of small writes, but never the whole JSON in memory.
		bw := bufio.NewWriter(w)
		if err := ktrace.WriteChromeTrace(bw, tr.Events()); err != nil {
			fatal(err)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
	case "summary":
		fmt.Fprintf(w, "%s on %s: %d cycles\n\n", res.Row, res.Env, res.Cycles)
		if err := ktrace.WriteSummary(w, tr); err != nil {
			fatal(err)
		}
	case "tree":
		ktrace.WriteTree(w, tr.Events(), *trees)
	default:
		fmt.Fprintf(os.Stderr, "ktrace: unknown format %q\n", *format)
		os.Exit(2)
	}
}

func printAttribution(w io.Writer, res bench.AttributionResult) {
	fmt.Fprintf(w, "E-ATTR: %s\n", res.Row)
	fmt.Fprintf(w, "  WPOS cycles    %12d (traced run: %d, dropped events: %d)\n",
		res.WPOSCycles, res.TracedCycles, res.Dropped)
	fmt.Fprintf(w, "  native cycles  %12d\n", res.NativeCycles)
	fmt.Fprintf(w, "  gap            %12d\n\n", res.Gap)
	fmt.Fprintf(w, "  %-12s %7s %14s %9s\n", "subsystem", "spans", "cycles(excl)", "crossing")
	for _, s := range res.Subsystems {
		mark := ""
		if crossing(s.Subsystem) {
			mark = "yes"
		}
		fmt.Fprintf(w, "  %-12s %7d %14d %9s\n", s.Subsystem, s.Spans, s.Cycles, mark)
	}
	fmt.Fprintf(w, "\n  crossing cycles %d = %.1f%% of the gap\n",
		res.CrossingCycles, 100*res.CrossingShare)
}

// crossing mirrors bench's classification for display.
func crossing(sub string) bool {
	switch sub {
	case "mach.rpc", "mach.ipc", "iosys", "drivers":
		return true
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ktrace:", err)
	os.Exit(1)
}
