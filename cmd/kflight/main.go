// Command kflight boots Workplace OS, drives a workload, fetches a
// postmortem flight dump over the monitor server (found through the name
// service, spoken to over the system's own RPC), and renders it: the
// last-K events per engine, the wait-for graph with any deadlock cycles
// named, scheduler state and the outstanding-work gauges.
//
// It also works offline on dump files written by the chaos harness or the
// stall watchdog:
//
//	kflight                               # boot, run file1, dump as text
//	kflight -format json > dump.json      # same, raw dump
//	kflight -read dump.json               # render a saved dump
//	kflight -diff a.json b.json           # what changed between two dumps
//
// Boot flags mirror cmd/wpos: -driver, -mem, -pool, -cache, -cpus.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kflight"
	"repro/internal/monitor"
	"repro/internal/netsvc"
	"repro/internal/workload"
)

var workloads = map[string]workload.Row{
	"file1":    workload.FileIntensive1,
	"file2":    workload.FileIntensive2,
	"gfx-low":  workload.GraphicsLow,
	"gfx-med":  workload.GraphicsMedium,
	"gfx-high": workload.GraphicsHigh,
	"pm-med":   workload.PMTaskingMedium,
	"pm-high":  workload.PMTaskingHigh,
}

func main() {
	var (
		driver = flag.String("driver", "user", "block driver model: user, kernel, ooddm")
		mem    = flag.Int("mem", 64, "installed memory in MB")
		pool   = flag.Int("pool", 1, "server threads per RPC server")
		cache  = flag.Int("cache", 0, "file-server buffer cache size in sectors (0 = off)")
		cpus   = flag.Int("cpus", 1, "processing engines")
		wl     = flag.String("workload", "file1", "traffic source: file1, file2, gfx-low, gfx-med, gfx-high, pm-med, pm-high")
		format = flag.String("format", "text", "output: text, json")
		read   = flag.String("read", "", "render a saved dump file instead of booting")
		diff   = flag.Bool("diff", false, "diff two saved dump files (args: a.json b.json)")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "kflight: -diff needs exactly two dump files")
			os.Exit(2)
		}
		a, err := readFile(flag.Arg(0))
		check(err)
		b, err := readFile(flag.Arg(1))
		check(err)
		kflight.Diff(os.Stdout, a, b)
		return
	}
	if *read != "" {
		d, err := readFile(*read)
		check(err)
		render(d, *format)
		return
	}

	row, ok := workloads[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "kflight: unknown workload %q\n", *wl)
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.MemoryMB = *mem
	cfg.ServerPool = *pool
	cfg.CacheSectors = *cache
	cfg.CPUs = *cpus
	switch *driver {
	case "kernel":
		cfg.Driver = core.DriverKernel
	case "ooddm":
		cfg.Driver = core.DriverOODDM
	default:
		cfg.Driver = core.DriverUser
	}
	cfg.ObjectMode = netsvc.FineGrained

	s, err := core.Boot(cfg)
	check(err)

	_, err = workload.Run(row, s.WorkloadEnv())
	check(err)

	// The dump travels the same path a postmortem would: name-service
	// lookup, monitor RPC, JSON in the reply's out-of-line region.
	b, err := s.Names.Lookup("/servers/monitor")
	check(err)
	viewer := s.Kernel.NewTask("kflight-cli")
	th, err := viewer.NewBoundThread("main")
	check(err)
	c, err := monitor.Connect(th, b.Task, b.Port)
	check(err)
	d, err := c.FlightDump()
	check(err)
	render(d, *format)
}

func render(d *kflight.Dump, format string) {
	switch format {
	case "json":
		check(d.WriteJSON(os.Stdout))
	case "text":
		check(d.WriteText(os.Stdout))
	default:
		fmt.Fprintf(os.Stderr, "kflight: unknown format %q\n", format)
		os.Exit(2)
	}
}

func readFile(path string) (*kflight.Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kflight.ReadDump(f)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kflight:", err)
		os.Exit(1)
	}
}
