package repro_test

// Ablation benchmarks for design choices the paper argues about but does
// not tabulate: synchronizer placement, shared-memory strategy, and the
// per-personality cost of reaching the same file server.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ksync"
	"repro/internal/vm"
)

// BenchmarkAblationSyncPrimitives: kernel-based vs memory-based
// synchronizers — the reason the project "implemented a comprehensive set
// of synchronizers" instead of building them from IPC.
func BenchmarkAblationSyncPrimitives(b *testing.B) {
	eng := cpu.NewEngine(cpu.Pentium133())
	f := ksync.NewFactory(eng, cpu.NewLayout(0x200000))
	km := f.NewKMutex()
	mm := f.NewMMutex()
	km.Lock()
	km.Unlock()
	mm.Lock()
	mm.Unlock()

	var kc, mc uint64
	for i := 0; i < b.N; i++ {
		base := eng.Counters()
		for j := 0; j < 100; j++ {
			km.Lock()
			km.Unlock()
		}
		kc = eng.Counters().Sub(base).Cycles / 100
		base = eng.Counters()
		for j := 0; j < 100; j++ {
			mm.Lock()
			mm.Unlock()
		}
		mc = eng.Counters().Sub(base).Cycles / 100
	}
	b.ReportMetric(float64(kc), "kernel-cycles")
	b.ReportMetric(float64(mc), "memory-cycles")
	b.ReportMetric(float64(kc)/float64(mc), "ratio")
}

// BenchmarkAblationSharedMemoryStrategy: passing 16 KiB between address
// spaces by coerced shared memory (write once, visible everywhere at the
// same address) versus copy-on-write vm_copy plus touching every page.
func BenchmarkAblationSharedMemoryStrategy(b *testing.B) {
	const size = 16 * vm.PageSize
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}

	var coerced, copied uint64
	for i := 0; i < b.N; i++ {
		// Coerced: one write, the other space reads in place.
		s := vm.NewSystem(64 << 20)
		r, err := s.AllocateCoerced(size, "bench")
		if err != nil {
			b.Fatal(err)
		}
		m1 := s.NewMap(0)
		m2 := s.NewMap(0)
		m1.AttachCoerced(r)
		m2.AttachCoerced(r)
		f0 := s.Phys.UsedFrames()
		m1.Write(r.Start, payload)
		m2.Read(r.Start, size)
		coerced = s.Phys.UsedFrames() - f0

		// COW copy: map-level copy then a write in the destination
		// touches (and copies) every page.
		s2 := vm.NewSystem(64 << 20)
		src := s2.NewMap(0)
		dst := s2.NewMap(0)
		a, _ := src.Allocate(0, size, true)
		src.Write(a, payload)
		f0 = s2.Phys.UsedFrames()
		const at = vm.VAddr(0x3000_0000)
		if err := dst.Copy(src, a, size, at); err != nil {
			b.Fatal(err)
		}
		for p := 0; p < 16; p++ {
			dst.Write(at+vm.VAddr(p*vm.PageSize), []byte{1})
		}
		copied = s2.Phys.UsedFrames() - f0
	}
	b.ReportMetric(float64(coerced), "coerced-frames")
	b.ReportMetric(float64(copied), "cow-frames-after-write")
}

// BenchmarkAblationPersonalityFileOp: the same logical file write through
// each personality's API stack — OS/2 Dos*, POSIX, and the TalOS
// framework — over one booted system.
func BenchmarkAblationPersonalityFileOp(b *testing.B) {
	s, err := core.Boot(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	op, err := s.OS2.CreateProcess("bench")
	if err != nil {
		b.Fatal(err)
	}
	pp, err := s.POSIX.Spawn("bench")
	if err != nil {
		b.Fatal(err)
	}
	ta, err := s.TalOS.NewApp("bench")
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 512)

	oh, e := op.DosOpen("/OS2.DAT", true, true)
	if e != 0 {
		b.Fatal(e)
	}
	pfd, pe := pp.Open("/POSIX.DAT", 0x41)
	if pe != 0 {
		b.Fatal(pe)
	}
	st, err := ta.CreateFileStream("/TALOS.DAT")
	if err != nil {
		b.Fatal(err)
	}

	var os2C, posixC, talosC uint64
	for i := 0; i < b.N; i++ {
		base := s.Kernel.CPU.Counters()
		for j := 0; j < 20; j++ {
			op.DosSetFilePtr(oh, 0)
			op.DosWrite(oh, data)
		}
		os2C = s.Kernel.CPU.Counters().Sub(base).Cycles / 20

		base = s.Kernel.CPU.Counters()
		for j := 0; j < 20; j++ {
			pp.Lseek(pfd, 0)
			pp.Write(pfd, data)
		}
		posixC = s.Kernel.CPU.Counters().Sub(base).Cycles / 20

		base = s.Kernel.CPU.Counters()
		for j := 0; j < 20; j++ {
			st.SeekTo(0)
			st.Write(data)
		}
		talosC = s.Kernel.CPU.Counters().Sub(base).Cycles / 20
	}
	b.ReportMetric(float64(os2C), "os2-cycles")
	b.ReportMetric(float64(posixC), "posix-cycles")
	b.ReportMetric(float64(talosC), "talos-cycles")
}

// BenchmarkAblationEvictionPressure: cost of running a working set at 1x,
// 2x and 4x of physical memory with the default pager absorbing the
// overflow — the mechanism behind Table 1's memory asymmetry, isolated.
func BenchmarkAblationEvictionPressure(b *testing.B) {
	run := func(overcommit int) uint64 {
		s, err := core.Boot(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		frames := 64
		sys := vm.NewSystem(uint64(frames) * vm.PageSize)
		sys.SetDefaultPager(s.Pager)
		m := sys.NewMap(0)
		n := frames * overcommit
		a, err := m.Allocate(0, uint64(n)*vm.PageSize, true)
		if err != nil {
			b.Fatal(err)
		}
		base := s.Kernel.CPU.Counters()
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < n; p++ {
				if err := m.Write(a+vm.VAddr(p*vm.PageSize), []byte{byte(p)}); err != nil {
					b.Fatal(err)
				}
			}
		}
		return s.Kernel.CPU.Counters().Sub(base).Cycles / uint64(2*n)
	}
	var c1, c2, c4 uint64
	for i := 0; i < b.N; i++ {
		c1 = run(1)
		c2 = run(2)
		c4 = run(4)
	}
	b.ReportMetric(float64(c1), "fit-cycles/touch")
	b.ReportMetric(float64(c2), "2x-cycles/touch")
	b.ReportMetric(float64(c4), "4x-cycles/touch")
}
