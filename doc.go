// Package repro is a reproduction, in Go, of the system described in
// "Experience with the Development of a Microkernel-Based, Multiserver
// Operating System" (Freeman L. Rawson III, HotOS 1997): IBM's Workplace
// OS on the IBM Microkernel, a heavily modified Mach 3.0.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory); the public entry points are:
//
//   - internal/core.Boot — boot a complete Workplace OS (microkernel,
//     microkernel services, shared services, personalities);
//   - internal/core.BootNative — boot the monolithic "native OS/2"
//     baseline used by the paper's Table 1;
//   - internal/bench — regenerate every table and figure.
//
// The benchmarks in bench_test.go map one-to-one onto the paper's
// evaluation; EXPERIMENTS.md records paper-versus-measured results.
package repro
